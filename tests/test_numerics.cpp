// Tests for the numerical-stability certifier (src/analysis/numerics):
// a priori error bounds, the planner's error budget, the shadow-precision
// analyzer, and FP-hazard capture/degradation. The property tests compare
// every algorithm × layout × depth against a long-double reference on both
// random and adversarial inputs and assert the certified bound dominates
// the observed error.

#include <gtest/gtest.h>

#include <cfenv>
#include <cfloat>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "analysis/numerics/error_bound.hpp"
#include "analysis/numerics/fptrap.hpp"
#include "analysis/numerics/shadow.hpp"
#include "robust/fault.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

using numerics::ErrorBound;
using numerics::error_bound;
using testing::random_matrix;

constexpr double kU = 0x1p-53;

bool trail_has_prefix(const GemmProfile& p, const std::string& prefix) {
  for (const auto& entry : p.degradation_trail) {
    if (entry.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

// ---- closed-form bound sanity ----

TEST(ErrorBoundTest, UnitRoundoffAndGamma) {
  EXPECT_DOUBLE_EQ(numerics::unit_roundoff(), kU);
  EXPECT_DOUBLE_EQ(numerics::gamma_factor(0), 0.0);
  // Small k: γ_k ≈ k·u.
  EXPECT_NEAR(numerics::gamma_factor(8), 8.0 * kU, 8.0 * kU * 1e-10);
  EXPECT_LT(numerics::gamma_factor(16), numerics::gamma_factor(32));
  // Collapse once k·u ≥ 1.
  EXPECT_TRUE(std::isinf(numerics::gamma_factor(std::uint64_t{1} << 53)));
}

TEST(ErrorBoundTest, StandardBoundMatchesClassicalFormula) {
  const ErrorBound b = error_bound(Algorithm::Standard, 64, 64, 64, 3);
  EXPECT_EQ(b.fast_levels, 0);
  EXPECT_EQ(b.leaf_k, 64u);
  EXPECT_NEAR(b.componentwise, numerics::gamma_factor(64) / kU, 1e-6);
  EXPECT_NEAR(b.constant, 64.0 * b.componentwise, 1e-6);
  EXPECT_DOUBLE_EQ(b.relative, b.constant * kU);
  // Depth does not change the classical ceiling.
  EXPECT_DOUBLE_EQ(error_bound(Algorithm::Standard, 64, 64, 64, 0).constant,
                   b.constant);
}

TEST(ErrorBoundTest, FastBoundsMatchHighamConstants) {
  // k = 64, depth 2, no cutoff: k₀ = 16 tiles re-expanded to 16, ℓ = 2,
  // K = 64. Strassen: (k₀² + 5k₀)·12² − 5K.
  const ErrorBound s = error_bound(Algorithm::Strassen, 64, 64, 64, 2);
  EXPECT_EQ(s.fast_levels, 2);
  EXPECT_EQ(s.leaf_k, 16u);
  EXPECT_TRUE(std::isinf(s.componentwise));
  EXPECT_NEAR(s.constant, (16.0 * 16.0 + 5.0 * 16.0) * 144.0 - 5.0 * 64.0, 1e-9);

  const ErrorBound w = error_bound(Algorithm::Winograd, 64, 64, 64, 2);
  EXPECT_NEAR(w.constant, (16.0 * 16.0 + 6.0 * 16.0) * 324.0 - 6.0 * 64.0, 1e-9);
  // Winograd's 18^ℓ amplification dominates Strassen's 12^ℓ.
  EXPECT_GT(w.constant, s.constant);
}

TEST(ErrorBoundTest, MoreFastLevelsMeansLooserBound) {
  // With zero fast levels the Strassen formula degenerates to the classical
  // k² (the γ-based classical bound is a hair above it via 1/(1−ku)).
  const double classical = error_bound(Algorithm::Standard, 256, 256, 256, 0).constant;
  double previous = error_bound(Algorithm::Strassen, 256, 256, 256, 0).constant;
  EXPECT_NEAR(previous, classical, 1e-6 * classical);
  for (int depth = 1; depth <= 4; ++depth) {
    const ErrorBound b = error_bound(Algorithm::Strassen, 256, 256, 256, depth);
    EXPECT_EQ(b.fast_levels, depth);
    EXPECT_GT(b.constant, previous);
    previous = b.constant;
  }
  // Raising the cutoff claws the bound back toward classical.
  const double all_fast = error_bound(Algorithm::Strassen, 256, 256, 256, 4, 0).constant;
  const double half_fast = error_bound(Algorithm::Strassen, 256, 256, 256, 4, 2).constant;
  const double no_fast = error_bound(Algorithm::Strassen, 256, 256, 256, 4, 4).constant;
  EXPECT_LT(half_fast, all_fast);
  EXPECT_LT(no_fast, half_fast);
}

TEST(ErrorBoundTest, DegenerateShapes) {
  EXPECT_DOUBLE_EQ(error_bound(Algorithm::Strassen, 8, 8, 0, 2).constant, 0.0);
  EXPECT_GT(error_bound(Algorithm::Standard, 1, 1, 1, 0).constant, 0.0);
  // Negative depth is clamped to 0.
  EXPECT_DOUBLE_EQ(error_bound(Algorithm::Standard, 8, 8, 8, -3).constant,
                   error_bound(Algorithm::Standard, 8, 8, 8, 0).constant);
}

TEST(ErrorBoundTest, MaxFastLevelsBracketsTheBudget) {
  const int depth = 4;
  // A budget above the fully fast bound allows every level.
  const double loose = error_bound(Algorithm::Strassen, 64, 64, 64, depth).relative * 2;
  EXPECT_EQ(numerics::max_fast_levels(Algorithm::Strassen, 64, 64, 64, depth, loose),
            depth);
  // A budget below the classical bound is infeasible.
  EXPECT_EQ(numerics::max_fast_levels(Algorithm::Strassen, 64, 64, 64, depth, 1e-20),
            -1);
  // A budget between levels ℓ and ℓ+1 returns exactly ℓ.
  for (int levels = 0; levels < depth; ++levels) {
    const double at = error_bound(Algorithm::Strassen, 64, 64, 64, depth,
                                  depth - levels).relative;
    const double next = error_bound(Algorithm::Strassen, 64, 64, 64, depth,
                                    depth - levels - 1).relative;
    ASSERT_LT(at, next);
    const double budget = 0.5 * (at + next);
    EXPECT_EQ(numerics::max_fast_levels(Algorithm::Strassen, 64, 64, 64, depth, budget),
              levels);
  }
}

TEST(ErrorBoundTest, FactorizationBoundScalesWithGrowth) {
  EXPECT_DOUBLE_EQ(numerics::factorization_bound(0, 10.0), 0.0);
  const double base = numerics::factorization_bound(64, 1.0);
  EXPECT_GT(base, 0.0);
  // Growth below 1 is clamped (the residual can't beat γ_{n+1}·n).
  EXPECT_DOUBLE_EQ(numerics::factorization_bound(64, 0.1), base);
  EXPECT_NEAR(numerics::factorization_bound(64, 8.0), 8.0 * base, 8.0 * base * 1e-12);
  EXPECT_GT(numerics::factorization_bound(128, 1.0), base);
}

TEST(ErrorBoundTest, QuadrantPath) {
  EXPECT_EQ(numerics::quadrant_path(0, 0, 8, 8, 0), "R");
  EXPECT_EQ(numerics::quadrant_path(0, 0, 8, 8, 3), "R.NW.NW.NW");
  EXPECT_EQ(numerics::quadrant_path(7, 7, 8, 8, 1), "R.SE");
  EXPECT_EQ(numerics::quadrant_path(4, 3, 8, 8, 2), "R.SW.NE");
  // Odd extents split on ceiling halves: row 3 of 7 is still the north half.
  EXPECT_EQ(numerics::quadrant_path(3, 0, 7, 7, 1), "R.NW");
  EXPECT_EQ(numerics::quadrant_path(4, 0, 7, 7, 1), "R.SW");
  // 1×1 blocks stop descending regardless of the requested levels.
  EXPECT_EQ(numerics::quadrant_path(0, 0, 1, 1, 4), "R");
}

// ---- property tests: certified bound dominates the observed error ----

/// Long-double reference product (alpha = 1, beta = 0, no transposes).
std::vector<long double> reference_ld(const Matrix& a, const Matrix& b) {
  const std::uint32_t m = a.rows(), k = a.cols(), n = b.cols();
  std::vector<long double> c(static_cast<std::size_t>(m) * n, 0.0L);
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t l = 0; l < k; ++l) {
      const long double blj = b.data()[static_cast<std::size_t>(j) * b.ld() + l];
      const double* al = a.data() + static_cast<std::size_t>(l) * a.ld();
      long double* cj = c.data() + static_cast<std::size_t>(j) * m;
      for (std::uint32_t i = 0; i < m; ++i) cj[i] += al[i] * blj;
    }
  }
  return c;
}

double max_abs(const Matrix& x) {
  double v = 0.0;
  for (std::uint32_t j = 0; j < x.cols(); ++j) {
    for (std::uint32_t i = 0; i < x.rows(); ++i) {
      v = std::max(v, std::fabs(x(i, j)));
    }
  }
  return v;
}

/// Run C = A·B under cfg and assert max|C − C_ld| ≤ certified · ‖A‖·‖B‖
/// (plus an absolute slack for below-denormal truncation).
void expect_bound_dominates(const Matrix& a, const Matrix& b, GemmConfig cfg,
                            double abs_slack, const std::string& label) {
  const std::uint32_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  GemmProfile profile;
  gemm(m, n, k, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None, 0.0,
       c.data(), c.ld(), cfg, &profile);
  ASSERT_GT(profile.error_bound, 0.0) << label;

  const std::vector<long double> ref = reference_ld(a, b);
  long double worst = 0.0L;
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = 0; i < m; ++i) {
      const long double diff =
          std::fabs(static_cast<long double>(c(i, j)) -
                    ref[static_cast<std::size_t>(j) * m + i]);
      if (diff > worst) worst = diff;
    }
  }
  const double ceiling = profile.error_bound * max_abs(a) * max_abs(b) + abs_slack;
  EXPECT_LE(static_cast<double>(worst), ceiling)
      << label << " bound=" << profile.error_bound
      << " fast_levels=" << profile.bound_fast_levels;
}

struct AdversarialCase {
  const char* name;
  Matrix a, b;
  double abs_slack;
};

std::vector<AdversarialCase> adversarial_cases(std::uint32_t m, std::uint32_t n,
                                               std::uint32_t k) {
  std::vector<AdversarialCase> cases;
  {
    // Random, well-scaled.
    cases.push_back({"random", random_matrix(m, k, 7), random_matrix(k, n, 8), 0.0});
  }
  {
    // Worst-case cancellation: alternating ±big columns of A against an
    // all-ones B make every dot product collapse to ~0 from O(big) terms.
    Matrix a(m, k), b(k, n);
    for (std::uint32_t l = 0; l < k; ++l) {
      for (std::uint32_t i = 0; i < m; ++i) {
        a(i, l) = (l % 2 == 0 ? 1.0 : -1.0) * (1.0e8 + i);
      }
    }
    for (std::uint32_t j = 0; j < n; ++j) {
      for (std::uint32_t l = 0; l < k; ++l) b(l, j) = 1.0;
    }
    cases.push_back({"cancellation", std::move(a), std::move(b), 0.0});
  }
  {
    // Exponent extremes: A ~ 2^+500 against B ~ 2^-500; products are O(1)
    // but any naive intermediate normalization would overflow.
    Matrix a = random_matrix(m, k, 9), b = random_matrix(k, n, 10);
    for (std::uint32_t l = 0; l < k; ++l) {
      for (std::uint32_t i = 0; i < m; ++i) a(i, l) = std::ldexp(a(i, l), 500);
    }
    for (std::uint32_t j = 0; j < n; ++j) {
      for (std::uint32_t l = 0; l < k; ++l) b(l, j) = std::ldexp(b(l, j), -500);
    }
    cases.push_back({"extremes", std::move(a), std::move(b), 0.0});
  }
  {
    // Denormal operands: the certified ceiling itself underflows, so allow
    // an absolute slack of k ulps at the bottom of the double range.
    Matrix a = random_matrix(m, k, 11), b = random_matrix(k, n, 12);
    for (std::uint32_t l = 0; l < k; ++l) {
      for (std::uint32_t i = 0; i < m; ++i) a(i, l) = std::ldexp(a(i, l), -1040);
    }
    cases.push_back({"denormal", std::move(a), std::move(b),
                     std::ldexp(static_cast<double>(k), -1060)});
  }
  return cases;
}

TEST(BoundDominationTest, AllAlgorithmsLayoutsAndDepths) {
  const std::uint32_t m = 48, n = 48, k = 48;
  const Algorithm algos[] = {Algorithm::Standard, Algorithm::Strassen,
                             Algorithm::Winograd};
  const auto cases = adversarial_cases(m, n, k);
  for (const auto& cs : cases) {
    for (Algorithm algo : algos) {
      for (Curve curve : kRecursiveCurves) {
        for (int depth = 0; depth <= 4; ++depth) {
          GemmConfig cfg;
          cfg.algorithm = algo;
          cfg.layout = curve;
          cfg.forced_depth = depth;
          const std::string label = std::string(cs.name) + "/" +
                                    std::string(algorithm_name(algo)) + "/" +
                                    std::string(curve_name(curve)) + "/d" +
                                    std::to_string(depth);
          expect_bound_dominates(cs.a, cs.b, cfg, cs.abs_slack, label);
        }
      }
      // Canonical baseline (depth chosen internally).
      GemmConfig canon;
      canon.algorithm = algo;
      canon.layout = Curve::ColMajor;
      expect_bound_dominates(cs.a, cs.b, canon, cs.abs_slack,
                             std::string(cs.name) + "/" +
                                 std::string(algorithm_name(algo)) + "/canonical");
    }
  }
}

TEST(BoundDominationTest, ProfileReportsBoundForEveryRun) {
  Matrix a = random_matrix(40, 40, 1), b = random_matrix(40, 40, 2);
  Matrix c(40, 40);
  for (Algorithm algo : {Algorithm::Standard, Algorithm::Strassen}) {
    GemmConfig cfg;
    cfg.algorithm = algo;
    GemmProfile profile;
    gemm(40, 40, 40, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
         0.0, c.data(), c.ld(), cfg, &profile);
    EXPECT_GT(profile.bound_constant, 0.0);
    EXPECT_DOUBLE_EQ(profile.error_bound, profile.bound_constant * kU);
    EXPECT_GE(profile.bound_fast_levels, 0);
    if (algo == Algorithm::Standard) {
      EXPECT_EQ(profile.bound_fast_levels, 0);
    }
  }
}

// ---- planner budget ----

TEST(ErrorBudgetTest, NegativeOrNanBudgetIsRejected) {
  Matrix a = random_matrix(8, 8, 1), b = random_matrix(8, 8, 2), c(8, 8);
  GemmConfig cfg;
  cfg.error_budget = -1e-10;
  EXPECT_THROW(gemm(8, 8, 8, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(),
                    Op::None, 0.0, c.data(), c.ld(), cfg),
               std::invalid_argument);
  cfg.error_budget = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(gemm(8, 8, 8, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(),
                    Op::None, 0.0, c.data(), c.ld(), cfg),
               std::invalid_argument);
}

TEST(ErrorBudgetTest, CapsFastLevelsAndStaysCorrect) {
  const std::uint32_t size = 64;
  const int depth = 4;
  Matrix a = random_matrix(size, size, 3), b = random_matrix(size, size, 4);
  // Budget that admits exactly 2 fast levels.
  const double at2 = error_bound(Algorithm::Strassen, size, size, size, depth,
                                 depth - 2).relative;
  const double at3 = error_bound(Algorithm::Strassen, size, size, size, depth,
                                 depth - 3).relative;
  ASSERT_LT(at2, at3);

  GemmConfig cfg;
  cfg.algorithm = Algorithm::Strassen;
  cfg.forced_depth = depth;
  cfg.error_budget = 0.5 * (at2 + at3);
  Matrix c(size, size);
  GemmProfile profile;
  gemm(size, size, size, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(),
       Op::None, 0.0, c.data(), c.ld(), cfg, &profile);
  EXPECT_TRUE(trail_has_prefix(profile, "numerics:budget:fast-levels=4->2"))
      << ::testing::PrintToString(profile.degradation_trail);
  EXPECT_EQ(profile.bound_fast_levels, 2);
  EXPECT_LE(profile.error_bound, cfg.error_budget);

  Matrix c_ref(size, size);
  reference_gemm(size, size, size, 1.0, a.data(), a.ld(), false, b.data(), b.ld(),
                 false, 0.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()),
            testing::gemm_tolerance(size, size, size));
}

TEST(ErrorBudgetTest, FallsBackToStandardWhenNoFastLevelFits) {
  const std::uint32_t size = 64;
  Matrix a = random_matrix(size, size, 5), b = random_matrix(size, size, 6);
  // Classical bound ≈ k²·u ≈ 4.5e-13 fits; even one Strassen level does not.
  const double classical = error_bound(Algorithm::Standard, size, size, size, 0).relative;
  const double one_level = error_bound(Algorithm::Strassen, size, size, size, 4, 3).relative;
  ASSERT_LT(classical, one_level);
  const double budget = 0.5 * (classical + one_level);

  for (Curve curve : {Curve::ZMorton, Curve::ColMajor}) {
    GemmConfig cfg;
    cfg.algorithm = Algorithm::Strassen;
    cfg.layout = curve;
    cfg.error_budget = budget;
    Matrix c(size, size);
    GemmProfile profile;
    gemm(size, size, size, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(),
         Op::None, 0.0, c.data(), c.ld(), cfg, &profile);
    EXPECT_TRUE(trail_has_prefix(profile, "numerics:budget->standard"))
        << ::testing::PrintToString(profile.degradation_trail);
    EXPECT_EQ(profile.bound_fast_levels, 0);
    EXPECT_LE(profile.error_bound, budget);

    Matrix c_ref(size, size);
    reference_gemm(size, size, size, 1.0, a.data(), a.ld(), false, b.data(),
                   b.ld(), false, 0.0, c_ref.data(), c_ref.ld());
    EXPECT_LT(max_abs_diff(c.view(), c_ref.view()),
              testing::gemm_tolerance(size, size, size));
  }
}

TEST(ErrorBudgetTest, InfeasibleBudgetIsRecordedAndClassicalStillRuns) {
  const std::uint32_t size = 32;
  Matrix a = random_matrix(size, size, 7), b = random_matrix(size, size, 8);
  for (Curve curve : {Curve::ZMorton, Curve::ColMajor}) {
    GemmConfig cfg;
    cfg.layout = curve;
    cfg.error_budget = 1e-20;  // below even the classical bound
    Matrix c(size, size);
    GemmProfile profile;
    gemm(size, size, size, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(),
         Op::None, 0.0, c.data(), c.ld(), cfg, &profile);
    EXPECT_TRUE(trail_has_prefix(profile, "numerics:budget-infeasible"))
        << ::testing::PrintToString(profile.degradation_trail);
    Matrix c_ref(size, size);
    reference_gemm(size, size, size, 1.0, a.data(), a.ld(), false, b.data(),
                   b.ld(), false, 0.0, c_ref.data(), c_ref.ld());
    EXPECT_LT(max_abs_diff(c.view(), c_ref.view()),
              testing::gemm_tolerance(size, size, size));
  }
}

// ---- shadow-precision analyzer ----

TEST(ShadowAnalyzerTest, DirectSetMeasureAndFallback) {
  numerics::ShadowAnalyzer analyzer;
  double x[4] = {1.0, 2.0, 3.0, 4.0};
  // Untracked cells fall back to the live double.
  EXPECT_EQ(analyzer.value(&x[0]), 1.0L);
  analyzer.set(&x[0], 1.0L + 0x1p-60L);
  EXPECT_EQ(analyzer.cells_tracked(), 1u);
  const numerics::ShadowStats st = analyzer.measure(x, 4, 4, 1);
  EXPECT_EQ(st.cells, 4u);
  EXPECT_EQ(st.tracked, 1u);
  EXPECT_NEAR(st.max_abs_error, 0x1p-60, 0x1p-80);
  EXPECT_EQ(st.worst_i, 0u);
  analyzer.clear_range(x, sizeof(x));
  EXPECT_EQ(analyzer.cells_tracked(), 0u);
  EXPECT_FALSE(analyzer.lossy());
}

TEST(ShadowAnalyzerTest, GemmReportsObservedErrorWithinBound) {
  const std::uint32_t size = 48;
  Matrix a = random_matrix(size, size, 21), b = random_matrix(size, size, 22);
  for (Algorithm algo : {Algorithm::Standard, Algorithm::Strassen,
                         Algorithm::Winograd}) {
    GemmConfig cfg;
    cfg.algorithm = algo;
    cfg.analyze_numerics = true;
    Matrix c(size, size);
    GemmProfile profile;
    gemm(size, size, size, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(),
         Op::None, 0.0, c.data(), c.ld(), cfg, &profile);
    EXPECT_EQ(profile.numerics_analyzed, numerics::instrumented());
    if (!numerics::instrumented()) {
      EXPECT_EQ(profile.shadow_cells, 0u);
      continue;
    }
    EXPECT_GT(profile.shadow_cells, 0u);
    EXPECT_GT(profile.observed_abs_error, 0.0);
    // The a priori certificate must dominate what the run actually did.
    EXPECT_LE(profile.observed_rel_error, profile.error_bound)
        << algorithm_name(algo);
    EXPECT_EQ(profile.worst_cell_path.rfind("R", 0), 0u);
  }
}

TEST(ShadowAnalyzerTest, CancellationHeavyInputsAreCounted) {
  if (!numerics::instrumented()) GTEST_SKIP() << "needs -DRLA_NUMERICS=ON";
  const std::uint32_t size = 32;
  Matrix a(size, size), b(size, size);
  for (std::uint32_t l = 0; l < size; ++l) {
    for (std::uint32_t i = 0; i < size; ++i) {
      a(i, l) = (l % 2 == 0 ? 1.0 : -1.0) * 1.0e8;
      b(l, i) = 1.0;
    }
  }
  GemmConfig cfg;
  cfg.analyze_numerics = true;
  Matrix c(size, size);
  GemmProfile profile;
  gemm(size, size, size, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(),
       Op::None, 0.0, c.data(), c.ld(), cfg, &profile);
  EXPECT_GT(profile.cancellations, 0u);
}

TEST(ShadowAnalyzerTest, ForcesSerialScheduleAndRecordsIt) {
  Matrix a = random_matrix(32, 32, 31), b = random_matrix(32, 32, 32);
  GemmConfig cfg;
  cfg.analyze_numerics = true;
  cfg.threads = 4;
  Matrix c(32, 32);
  GemmProfile profile;
  gemm(32, 32, 32, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
       0.0, c.data(), c.ld(), cfg, &profile);
  EXPECT_TRUE(trail_has_prefix(profile, "numerics:serial-schedule"))
      << ::testing::PrintToString(profile.degradation_trail);
}

// ---- FP-hazard capture ----

TEST(FpCaptureTest, DescribeMasks) {
  EXPECT_EQ(numerics::fp_describe(0), "none");
  EXPECT_EQ(numerics::fp_describe(numerics::kFpInvalid), "invalid");
  EXPECT_EQ(numerics::fp_describe(numerics::kFpInvalid | numerics::kFpOverflow |
                                  numerics::kFpDivByZero),
            "invalid|overflow|divzero");
}

TEST(FpCaptureTest, DrainSeesLocalFlags) {
  numerics::ScopedFpCapture capture;
  (void)numerics::fp_drain();  // clear anything the harness left behind
  // feraiseexcept sets the same sticky flag as an actual x/0 without
  // tripping -fsanitize=float-divide-by-zero builds.
  std::feraiseexcept(FE_DIVBYZERO);
  const unsigned mask = numerics::fp_drain();
  EXPECT_NE(mask & numerics::kFpDivByZero, 0u);
  // A second drain with no new hazards is clean.
  EXPECT_EQ(numerics::fp_drain(), 0u);
}

TEST(FpCaptureTest, DisarmedPollIsFree) {
  ASSERT_FALSE(numerics::fp_capture_armed());
  std::feraiseexcept(FE_DIVBYZERO);
  numerics::fp_poll();  // must not crash or accumulate while disarmed
  numerics::ScopedFpCapture capture;
  EXPECT_EQ(numerics::fp_drain() & numerics::kFpDivByZero, 0u)
      << "arm must start from clean flags";
}

TEST(FpHazardTest, InjectedNanDegradesFastRunToStandard) {
  const std::uint32_t size = 32;
  Matrix a = random_matrix(size, size, 41), b = random_matrix(size, size, 42);
  for (Curve curve : {Curve::ZMorton, Curve::Hilbert}) {
    GemmConfig cfg;
    cfg.algorithm = Algorithm::Strassen;
    cfg.layout = curve;
    cfg.fp_check = true;
    cfg.fault_spec = "kernel.fpe:nth=1";  // one-shot: the rerun is clean
    Matrix c(size, size);
    GemmProfile profile;
    gemm(size, size, size, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(),
         Op::None, 0.0, c.data(), c.ld(), cfg, &profile);
    EXPECT_NE(profile.fp_hazards & numerics::kFpInvalid, 0u);
    EXPECT_TRUE(profile.fp_degraded);
    EXPECT_TRUE(trail_has_prefix(profile, "fp:hazard->standard"))
        << ::testing::PrintToString(profile.degradation_trail);
    // The rerun must leave a correct product despite the poisoned first try.
    Matrix c_ref(size, size);
    reference_gemm(size, size, size, 1.0, a.data(), a.ld(), false, b.data(),
                   b.ld(), false, 0.0, c_ref.data(), c_ref.ld());
    EXPECT_LT(max_abs_diff(c.view(), c_ref.view()),
              testing::gemm_tolerance(size, size, size));
  }
}

TEST(FpHazardTest, BetaNonzeroRerunRestoresCFromBackup) {
  const std::uint32_t size = 24;
  Matrix a = random_matrix(size, size, 43), b = random_matrix(size, size, 44);
  Matrix c = random_matrix(size, size, 45);
  Matrix c_ref = c;
  GemmConfig cfg;
  cfg.algorithm = Algorithm::Winograd;
  cfg.fp_check = true;
  cfg.fault_spec = "kernel.fpe:nth=1";
  GemmProfile profile;
  gemm(size, size, size, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(),
       Op::None, 0.5, c.data(), c.ld(), cfg, &profile);
  EXPECT_TRUE(profile.fp_degraded);
  reference_gemm(size, size, size, 1.0, a.data(), a.ld(), false, b.data(), b.ld(),
                 false, 0.5, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()),
            testing::gemm_tolerance(size, size, size));
}

TEST(FpHazardTest, GenuineOverflowIsAttributedToCompute) {
  const std::uint32_t size = 32;
  Matrix a(size, size), b(size, size);
  for (std::uint32_t j = 0; j < size; ++j) {
    for (std::uint32_t i = 0; i < size; ++i) {
      a(i, j) = std::ldexp(1.0, 550);
      b(i, j) = std::ldexp(1.0, 550);
    }
  }
  GemmConfig cfg;
  cfg.algorithm = Algorithm::Strassen;
  cfg.fp_check = true;
  Matrix c(size, size);
  GemmProfile profile;
  gemm(size, size, size, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(),
       Op::None, 0.0, c.data(), c.ld(), cfg, &profile);
  EXPECT_NE(profile.fp_hazards & numerics::kFpOverflow, 0u);
  EXPECT_TRUE(profile.fp_degraded);  // products overflow in the rerun too,
                                     // but the hazard fired on the fast run
  bool attributed = false;
  for (const auto& entry : profile.degradation_trail) {
    if (entry.rfind("fp:", 0) == 0) attributed = true;
  }
  EXPECT_TRUE(attributed);
}

TEST(FpHazardTest, CleanRunReportsNoHazards) {
  Matrix a = random_matrix(32, 32, 46), b = random_matrix(32, 32, 47);
  GemmConfig cfg;
  cfg.algorithm = Algorithm::Strassen;
  cfg.fp_check = true;
  cfg.threads = 3;  // exercise the worker-poll path
  Matrix c(32, 32);
  GemmProfile profile;
  gemm(32, 32, 32, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
       0.0, c.data(), c.ld(), cfg, &profile);
  EXPECT_EQ(profile.fp_hazards, 0u);
  EXPECT_FALSE(profile.fp_degraded);
}

TEST(FpHazardDeathTest, ScopedTrapsRaisesSigfpe) {
  if (!numerics::ScopedTraps::supported()) {
    GTEST_SKIP() << "feenableexcept not available";
  }
  EXPECT_DEATH(
      {
        numerics::ScopedTraps traps(numerics::kFpDivByZero);
        // With the exception unmasked, raising the flag delivers SIGFPE.
        std::feraiseexcept(FE_DIVBYZERO);
      },
      "");
}

TEST(FaultSiteTest, KernelFpeSiteParsesAndCounts) {
  fault::Site site;
  ASSERT_TRUE(fault::parse_site("kernel.fpe", site));
  EXPECT_EQ(site, fault::Site::KernelFpe);
  EXPECT_EQ(fault::site_name(fault::Site::KernelFpe), "kernel.fpe");

  fault::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(fault::parse_plan("kernel.fpe:nth=2", plan, &error)) << error;
  EXPECT_EQ(plan.at(fault::Site::KernelFpe).mode, fault::Trigger::Mode::Nth);
  EXPECT_EQ(plan.at(fault::Site::KernelFpe).nth, 2u);
}

// ---- LU / Cholesky certification ----

TEST(FactorizationCertificateTest, CholeskyResidualWithinBound) {
  const std::uint32_t n = 48;
  Matrix m = random_matrix(n, n, 51);
  Matrix a(n, n);
  // A = MᵀM + n·I is comfortably SPD.
  reference_gemm(n, n, n, 1.0, m.data(), m.ld(), true, m.data(), m.ld(), false,
                 0.0, a.data(), a.ld());
  for (std::uint32_t i = 0; i < n; ++i) a(i, i) += n;
  Matrix original = a;

  CholeskyProfile profile;
  cholesky(n, a.data(), a.ld(), {}, &profile);
  EXPECT_GT(profile.growth_factor, 0.0);
  EXPECT_GT(profile.error_bound, 0.0);

  // Residual ‖A − L·Lᵀ‖_max / ‖A‖_max against the certificate.
  double residual = 0.0, norm_a = 0.0;
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = j; i < n; ++i) {
      double llt = 0.0;
      for (std::uint32_t l = 0; l <= j; ++l) llt += a(i, l) * a(j, l);
      residual = std::max(residual, std::fabs(original(i, j) - llt));
      norm_a = std::max(norm_a, std::fabs(original(i, j)));
    }
  }
  EXPECT_LE(residual / norm_a, profile.error_bound);
}

TEST(FactorizationCertificateTest, LuResidualWithinBoundAndGrowthReported) {
  const std::uint32_t n = 48;
  Matrix a = random_matrix(n, n, 52);
  // Diagonal dominance keeps no-pivot LU stable (growth ≈ 1).
  for (std::uint32_t i = 0; i < n; ++i) a(i, i) += 2.0 * n;
  Matrix original = a;

  LuProfile profile;
  lu_nopivot(n, a.data(), a.ld(), {}, &profile);
  EXPECT_GT(profile.growth_factor, 0.0);
  EXPECT_LT(profile.growth_factor, 4.0);  // dominance bounds the growth
  EXPECT_GT(profile.error_bound, 0.0);

  double residual = 0.0, norm_a = 0.0;
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = 0; i < n; ++i) {
      double lu = 0.0;
      const std::uint32_t lim = std::min(i, j);
      for (std::uint32_t l = 0; l <= lim; ++l) {
        const double lil = i == l ? 1.0 : (l < i ? a(i, l) : 0.0);
        const double ulj = l <= j ? a(l, j) : 0.0;
        lu += lil * ulj;
      }
      residual = std::max(residual, std::fabs(original(i, j) - lu));
      norm_a = std::max(norm_a, std::fabs(original(i, j)));
    }
  }
  EXPECT_LE(residual / norm_a, profile.error_bound);
}

}  // namespace
}  // namespace rla
