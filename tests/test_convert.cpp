// Tests of canonical <-> recursive layout conversion (paper §4), including
// fused transposition and scaling, padding zero-fill, and parallel-range
// equivalence.

#include <gtest/gtest.h>

#include "core/matrix.hpp"
#include "core/tiled_matrix.hpp"
#include "layout/convert.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

using rla::testing::random_matrix;

class ConvertTest : public ::testing::TestWithParam<Curve> {};

TEST_P(ConvertTest, RoundTripExactSizes) {
  const Curve c = GetParam();
  const TileGeometry g = make_geometry(32, 32, 2, c);  // 8x8 tiles, no padding
  Matrix src = random_matrix(32, 32, 1);
  TiledMatrix tiled(g);
  canonical_to_tiled(src.data(), src.ld(), false, 1.0, g, tiled.data());
  Matrix back(32, 32);
  tiled_to_canonical(tiled.data(), g, back.data(), back.ld());
  EXPECT_EQ(max_abs_diff(src.view(), back.view()), 0.0) << curve_name(c);
}

TEST_P(ConvertTest, RoundTripWithPadding) {
  const Curve c = GetParam();
  const TileGeometry g = make_geometry(23, 37, 2, c);
  Matrix src = random_matrix(23, 37, 2);
  TiledMatrix tiled(g);
  canonical_to_tiled(src.data(), src.ld(), false, 1.0, g, tiled.data());
  Matrix back(23, 37);
  back.fill([](auto, auto) { return -99.0; });
  tiled_to_canonical(tiled.data(), g, back.data(), back.ld());
  EXPECT_EQ(max_abs_diff(src.view(), back.view()), 0.0) << curve_name(c);
}

TEST_P(ConvertTest, ElementwisePlacementMatchesLayoutFunction) {
  const Curve c = GetParam();
  const TileGeometry g = make_geometry(20, 28, 2, c);
  Matrix src(20, 28);
  src.fill([](std::uint32_t i, std::uint32_t j) { return 1000.0 * i + j; });
  TiledMatrix tiled(g);
  canonical_to_tiled(src.data(), src.ld(), false, 1.0, g, tiled.data());
  for (std::uint32_t i = 0; i < 20; ++i) {
    for (std::uint32_t j = 0; j < 28; ++j) {
      ASSERT_EQ(tiled.at(i, j), src(i, j)) << curve_name(c);
    }
  }
}

TEST_P(ConvertTest, PaddingIsZeroFilled) {
  const Curve c = GetParam();
  const TileGeometry g = make_geometry(19, 21, 2, c);
  TiledMatrix tiled(g);
  // Poison the buffer first so stale values would be caught.
  for (std::uint64_t e = 0; e < tiled.size(); ++e) tiled.data()[e] = -7.0;
  Matrix src = random_matrix(19, 21, 3);
  canonical_to_tiled(src.data(), src.ld(), false, 1.0, g, tiled.data());
  for (std::uint32_t i = 0; i < g.padded_rows(); ++i) {
    for (std::uint32_t j = 0; j < g.padded_cols(); ++j) {
      if (i >= 19 || j >= 21) {
        ASSERT_EQ(tiled.at(i, j), 0.0) << curve_name(c) << " " << i << "," << j;
      }
    }
  }
}

TEST_P(ConvertTest, TransposeFusion) {
  const Curve c = GetParam();
  const TileGeometry g = make_geometry(24, 18, 2, c);  // logical 24x18
  Matrix src = random_matrix(18, 24, 4);               // physical 18x24
  TiledMatrix tiled(g);
  canonical_to_tiled(src.data(), src.ld(), true, 1.0, g, tiled.data());
  for (std::uint32_t i = 0; i < 24; ++i) {
    for (std::uint32_t j = 0; j < 18; ++j) {
      ASSERT_EQ(tiled.at(i, j), src(j, i)) << curve_name(c);
    }
  }
}

TEST_P(ConvertTest, AlphaScalingFusion) {
  const Curve c = GetParam();
  const TileGeometry g = make_geometry(16, 16, 1, c);
  Matrix src = random_matrix(16, 16, 5);
  TiledMatrix tiled(g);
  canonical_to_tiled(src.data(), src.ld(), false, -2.5, g, tiled.data());
  for (std::uint32_t i = 0; i < 16; ++i) {
    for (std::uint32_t j = 0; j < 16; ++j) {
      ASSERT_DOUBLE_EQ(tiled.at(i, j), -2.5 * src(i, j));
    }
  }
}

TEST_P(ConvertTest, RangeConversionEqualsFull) {
  // Converting in disjoint curve-position ranges (how the parallel driver
  // splits the remap) must produce the same bytes as one full pass.
  const Curve c = GetParam();
  const TileGeometry g = make_geometry(30, 26, 3, c);
  Matrix src = random_matrix(30, 26, 6);
  TiledMatrix full(g), ranged(g);
  canonical_to_tiled(src.data(), src.ld(), false, 1.0, g, full.data());
  const std::uint64_t n = g.tile_count();
  for (std::uint64_t s = 0; s < n; s += 7) {
    canonical_to_tiled(src.data(), src.ld(), false, 1.0, g, ranged.data(), s,
                       std::min(n, s + 7));
  }
  for (std::uint64_t e = 0; e < full.size(); ++e) {
    ASSERT_EQ(full.data()[e], ranged.data()[e]);
  }
}

TEST_P(ConvertTest, LeadingDimensionRespected) {
  const Curve c = GetParam();
  // Source is a 12x12 window inside a 40-row canonical array.
  Matrix big = random_matrix(40, 20, 7);
  const TileGeometry g = make_geometry(12, 12, 1, c);
  TiledMatrix tiled(g);
  canonical_to_tiled(big.data() + 3, big.ld(), false, 1.0, g, tiled.data());
  for (std::uint32_t i = 0; i < 12; ++i) {
    for (std::uint32_t j = 0; j < 12; ++j) {
      ASSERT_EQ(tiled.at(i, j), big(3 + i, j));
    }
  }
}

TEST_P(ConvertTest, ZeroTiles) {
  const Curve c = GetParam();
  const TileGeometry g = make_geometry(16, 16, 2, c);
  TiledMatrix tiled(g);
  for (std::uint64_t e = 0; e < tiled.size(); ++e) tiled.data()[e] = 5.0;
  zero_tiles(g, tiled.data(), 4, 12);
  const std::uint64_t tsz = g.tile_elems();
  for (std::uint64_t e = 0; e < tiled.size(); ++e) {
    const std::uint64_t tile = e / tsz;
    ASSERT_EQ(tiled.data()[e], (tile >= 4 && tile < 12) ? 0.0 : 5.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRecursive, ConvertTest,
                         ::testing::ValuesIn(kRecursiveCurves),
                         [](const ::testing::TestParamInfo<Curve>& info) {
                           return rla::testing::sanitize(curve_name(info.param));
                         });

}  // namespace
}  // namespace rla
