// Tests of the curve rotations/reflections (paper §3's closing remark).

#include <gtest/gtest.h>

#include <set>

#include "layout/curve.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

constexpr CurveTransform kAllTransforms[] = {
    CurveTransform::Identity,  CurveTransform::FlipI,
    CurveTransform::FlipJ,     CurveTransform::Rotate180,
    CurveTransform::Transpose, CurveTransform::Rotate90,
    CurveTransform::Rotate270, CurveTransform::AntiTranspose,
};

TEST(Transforms, ApplyKnownPoints) {
  const int d = 3;  // 8x8, M = 7
  EXPECT_EQ(apply_transform(CurveTransform::Identity, 1, 2, d).i, 1u);
  EXPECT_EQ(apply_transform(CurveTransform::Identity, 1, 2, d).j, 2u);
  EXPECT_EQ(apply_transform(CurveTransform::FlipI, 1, 2, d).i, 6u);
  EXPECT_EQ(apply_transform(CurveTransform::FlipJ, 1, 2, d).j, 5u);
  const TileCoord t = apply_transform(CurveTransform::Transpose, 1, 2, d);
  EXPECT_EQ(t.i, 2u);
  EXPECT_EQ(t.j, 1u);
  const TileCoord r90 = apply_transform(CurveTransform::Rotate90, 1, 2, d);
  EXPECT_EQ(r90.i, 2u);  // flip i (1 -> 6) then swap -> (2, 6)
  EXPECT_EQ(r90.j, 6u);
}

TEST(Transforms, GroupClosureAndInverses) {
  // Every transform is a bijection of the grid; rotations invert each other,
  // everything else is an involution.
  const int d = 3;
  for (const CurveTransform t : kAllTransforms) {
    std::set<std::uint64_t> seen;
    for (std::uint32_t i = 0; i < 8; ++i) {
      for (std::uint32_t j = 0; j < 8; ++j) {
        const TileCoord tc = apply_transform(t, i, j, d);
        ASSERT_TRUE(seen.insert((std::uint64_t{tc.i} << 32) | tc.j).second);
      }
    }
  }
  for (std::uint32_t i = 0; i < 8; ++i) {
    for (std::uint32_t j = 0; j < 8; ++j) {
      const TileCoord r = apply_transform(CurveTransform::Rotate90, i, j, d);
      const TileCoord back = apply_transform(CurveTransform::Rotate270, r.i, r.j, d);
      ASSERT_EQ(back.i, i);
      ASSERT_EQ(back.j, j);
    }
  }
}

class TransformedCurveTest
    : public ::testing::TestWithParam<std::tuple<Curve, CurveTransform>> {};

TEST_P(TransformedCurveTest, BijectionAndRoundTrip) {
  const auto [curve, transform] = GetParam();
  const int d = 4;
  std::set<std::uint64_t> seen;
  for (std::uint32_t i = 0; i < 16; ++i) {
    for (std::uint32_t j = 0; j < 16; ++j) {
      const std::uint64_t s = s_index_transformed(curve, transform, i, j, d);
      ASSERT_LT(s, 256u);
      ASSERT_TRUE(seen.insert(s).second);
      const TileCoord back = s_inverse_transformed(curve, transform, s, d);
      ASSERT_EQ(back.i, i);
      ASSERT_EQ(back.j, j);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    CurveByTransform, TransformedCurveTest,
    ::testing::Combine(::testing::ValuesIn(kRecursiveCurves),
                       ::testing::ValuesIn(kAllTransforms)),
    [](const ::testing::TestParamInfo<TransformedCurveTest::ParamType>& info) {
      return rla::testing::sanitize(curve_name(std::get<0>(info.param))) + "_t" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

TEST(Transforms, ZMortonTransposeSwapsInterleaveOrder) {
  // Transposing Z-Morton exchanges the roles of i and j in the interleave:
  // S_T(i, j) = S(j, i).
  const int d = 4;
  for (std::uint32_t i = 0; i < 16; ++i) {
    for (std::uint32_t j = 0; j < 16; ++j) {
      ASSERT_EQ(s_index_transformed(Curve::ZMorton, CurveTransform::Transpose, i,
                                    j, d),
                s_index(Curve::ZMorton, j, i, d));
    }
  }
}

TEST(Transforms, HilbertRotationsPreserveAdjacency) {
  // The defining Hilbert property survives every rigid transform.
  const int d = 4;
  for (const CurveTransform t : kAllTransforms) {
    TileCoord prev = s_inverse_transformed(Curve::Hilbert, t, 0, d);
    for (std::uint64_t s = 1; s < 256; ++s) {
      const TileCoord cur = s_inverse_transformed(Curve::Hilbert, t, s, d);
      const int dist =
          std::abs(static_cast<int>(cur.i) - static_cast<int>(prev.i)) +
          std::abs(static_cast<int>(cur.j) - static_cast<int>(prev.j));
      ASSERT_EQ(dist, 1) << "transform " << static_cast<int>(t) << " s=" << s;
      prev = cur;
    }
  }
}

TEST(Transforms, UMortonRotate180IsSelfSymmetric) {
  // The U pattern is symmetric under 180° rotation combined with traversal
  // reversal: S_rot(i,j) = N-1-S(i,j) would hold for a palindromic curve.
  // U-Morton is not palindromic, but its *quadrant order* is reversed:
  // verify the transform machinery by checking the top-level chunks.
  const int d = 3;
  const std::uint64_t quarter = 16;
  // Identity: NW quadrant occupies chunk 0.
  EXPECT_LT(s_index_transformed(Curve::UMorton, CurveTransform::Identity, 0, 0, d),
            quarter);
  // Rotate180: the NW corner lands where SE used to be.
  const std::uint64_t s =
      s_index_transformed(Curve::UMorton, CurveTransform::Rotate180, 0, 0, d);
  EXPECT_EQ(s, s_index(Curve::UMorton, 7, 7, d));
}

}  // namespace
}  // namespace rla
