// Tests of the recursive tiled LU factorization (no pivoting) and its TRSM
// building blocks.

#include <gtest/gtest.h>

#include "core/gemm.hpp"
#include "layout/convert.hpp"
#include "linalg/lu.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

using rla::testing::random_matrix;

/// Random strictly diagonally dominant matrix: safe for unpivoted LU.
Matrix make_dominant(std::uint32_t n, std::uint64_t seed) {
  Matrix a = random_matrix(n, n, seed);
  for (std::uint32_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::uint32_t j = 0; j < n; ++j) row_sum += std::abs(a(i, j));
    a(i, i) = row_sum + 1.0;
  }
  return a;
}

/// Rebuild L·U from the packed in-place factor and compare against A.
double lu_reconstruction_error(const Matrix& a, const Matrix& packed) {
  const std::uint32_t n = a.rows();
  Matrix l(n, n), u(n, n);
  l.zero();
  u.zero();
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (i > j) {
        l(i, j) = packed(i, j);
      } else {
        u(i, j) = packed(i, j);
      }
    }
    l(j, j) = 1.0;
  }
  Matrix rebuilt(n, n);
  rebuilt.zero();
  reference_gemm(n, n, n, 1.0, l.data(), l.ld(), false, u.data(), u.ld(), false,
                 0.0, rebuilt.data(), rebuilt.ld());
  return max_abs_diff(a.view(), rebuilt.view());
}

TEST(ReferenceLu, FactorsKnownMatrix) {
  // A = [[2, 1],[4, 5]] -> L = [[1,0],[2,1]], U = [[2,1],[0,3]].
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 4;
  a(1, 1) = 5;
  ASSERT_TRUE(reference_lu_nopivot(2, a.data(), a.ld()));
  EXPECT_DOUBLE_EQ(a(1, 0), 2.0);  // L21
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);  // U11
  EXPECT_DOUBLE_EQ(a(0, 1), 1.0);  // U12
  EXPECT_DOUBLE_EQ(a(1, 1), 3.0);  // U22
}

TEST(ReferenceLu, DetectsZeroPivot) {
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 1;
  EXPECT_FALSE(reference_lu_nopivot(2, a.data(), a.ld()));
}

class LuTest : public ::testing::TestWithParam<Curve> {};

TEST_P(LuTest, ReconstructsDominantMatrix) {
  const Curve curve = GetParam();
  for (const std::uint32_t n : {16u, 30u, 64u, 100u}) {
    Matrix a = make_dominant(n, 17 + n);
    Matrix packed = a;
    LuConfig cfg;
    cfg.layout = curve;
    lu_nopivot(n, packed.data(), packed.ld(), cfg);
    EXPECT_LT(lu_reconstruction_error(a, packed), 1e-9 * n)
        << curve_name(curve) << " n=" << n;
  }
}

TEST_P(LuTest, MatchesReferenceFactor) {
  const Curve curve = GetParam();
  const std::uint32_t n = 80;
  Matrix a = make_dominant(n, 21);
  Matrix rec = a, ref = a;
  LuConfig cfg;
  cfg.layout = curve;
  lu_nopivot(n, rec.data(), rec.ld(), cfg);
  ASSERT_TRUE(reference_lu_nopivot(n, ref.data(), ref.ld()));
  EXPECT_LT(max_abs_diff(rec.view(), ref.view()), 1e-9);
}

TEST_P(LuTest, ParallelMatchesSerial) {
  const Curve curve = GetParam();
  const std::uint32_t n = 128;
  Matrix a = make_dominant(n, 23);
  Matrix serial = a, parallel = a;
  LuConfig cfg;
  cfg.layout = curve;
  lu_nopivot(n, serial.data(), serial.ld(), cfg);
  cfg.threads = 4;
  lu_nopivot(n, parallel.data(), parallel.ld(), cfg);
  EXPECT_EQ(max_abs_diff(serial.view(), parallel.view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllRecursive, LuTest,
                         ::testing::ValuesIn(kRecursiveCurves),
                         [](const ::testing::TestParamInfo<Curve>& info) {
                           return rla::testing::sanitize(curve_name(info.param));
                         });

TEST(Lu, ThrowsOnZeroPivot) {
  const std::uint32_t n = 32;
  Matrix a = make_dominant(n, 25);
  a(0, 0) = 0.0;
  LuConfig cfg;
  EXPECT_THROW(lu_nopivot(n, a.data(), a.ld(), cfg), std::domain_error);
}

TEST(Lu, ArgumentValidation) {
  Matrix a(4, 4);
  LuConfig cfg;
  EXPECT_THROW(lu_nopivot(4, nullptr, 4, cfg), std::invalid_argument);
  EXPECT_THROW(lu_nopivot(4, a.data(), 1, cfg), std::invalid_argument);
  cfg.layout = Curve::RowMajor;
  EXPECT_THROW(lu_nopivot(4, a.data(), 4, cfg), std::invalid_argument);
}

TEST(LuBlocks, TrsmLeftUnitLower) {
  // L unit lower; X' = L⁻¹ X must satisfy L·X' = X.
  const std::uint32_t n = 64;
  Matrix l(n, n);
  l.zero();
  Xoshiro256 rng(31);
  for (std::uint32_t j = 0; j < n; ++j) {
    l(j, j) = 1.0;
    for (std::uint32_t i = j + 1; i < n; ++i) {
      l(i, j) = 0.2 * rng.next_double(-1.0, 1.0);
    }
  }
  Matrix x = random_matrix(n, n, 32);
  const TileGeometry g = make_geometry(n, n, 3, Curve::Hilbert);
  TiledMatrix tl(g), tx(g);
  canonical_to_tiled(l.data(), l.ld(), false, 1.0, g, tl.data());
  canonical_to_tiled(x.data(), x.ld(), false, 1.0, g, tx.data());
  WorkerPool pool(0);
  MulContext ctx;
  ctx.pool = &pool;
  trsm_left_unit_lower(ctx, tx.root(), tl.root());
  Matrix solved(n, n);
  tiled_to_canonical(tx.data(), g, solved.data(), solved.ld());
  Matrix back(n, n);
  back.zero();
  reference_gemm(n, n, n, 1.0, l.data(), l.ld(), false, solved.data(),
                 solved.ld(), false, 0.0, back.data(), back.ld());
  EXPECT_LT(max_abs_diff(back.view(), x.view()), 1e-10);
}

TEST(LuBlocks, TrsmLeftIgnoresStoredDiagonal) {
  // The LU-packed storage keeps U's diagonal where L's implicit 1s live;
  // the unit-lower solve must not read it.
  const std::uint32_t n = 32;
  Matrix l(n, n);
  l.zero();
  for (std::uint32_t j = 0; j < n; ++j) {
    l(j, j) = 1e6;  // garbage that must be ignored
    for (std::uint32_t i = j + 1; i < n; ++i) l(i, j) = 0.1;
  }
  Matrix x = random_matrix(n, n, 33);
  const TileGeometry g = make_geometry(n, n, 2, Curve::ZMorton);
  TiledMatrix tl(g), tx(g);
  canonical_to_tiled(l.data(), l.ld(), false, 1.0, g, tl.data());
  canonical_to_tiled(x.data(), x.ld(), false, 1.0, g, tx.data());
  WorkerPool pool(0);
  MulContext ctx;
  ctx.pool = &pool;
  trsm_left_unit_lower(ctx, tx.root(), tl.root());
  Matrix solved(n, n);
  tiled_to_canonical(tx.data(), g, solved.data(), solved.ld());
  // Rebuild with an explicit unit diagonal.
  Matrix unit = l;
  for (std::uint32_t j = 0; j < n; ++j) unit(j, j) = 1.0;
  Matrix back(n, n);
  back.zero();
  reference_gemm(n, n, n, 1.0, unit.data(), unit.ld(), false, solved.data(),
                 solved.ld(), false, 0.0, back.data(), back.ld());
  EXPECT_LT(max_abs_diff(back.view(), x.view()), 1e-9);
}

TEST(LuBlocks, TrsmRightUpper) {
  const std::uint32_t n = 64;
  Matrix u(n, n);
  u.zero();
  Xoshiro256 rng(34);
  for (std::uint32_t j = 0; j < n; ++j) {
    u(j, j) = 1.5 + rng.next_double();
    for (std::uint32_t i = 0; i < j; ++i) u(i, j) = 0.2 * rng.next_double(-1.0, 1.0);
  }
  Matrix x = random_matrix(n, n, 35);
  const TileGeometry g = make_geometry(n, n, 3, Curve::GrayMorton);
  TiledMatrix tu(g), tx(g);
  canonical_to_tiled(u.data(), u.ld(), false, 1.0, g, tu.data());
  canonical_to_tiled(x.data(), x.ld(), false, 1.0, g, tx.data());
  WorkerPool pool(0);
  MulContext ctx;
  ctx.pool = &pool;
  trsm_right_upper(ctx, tx.root(), tu.root());
  Matrix solved(n, n);
  tiled_to_canonical(tx.data(), g, solved.data(), solved.ld());
  Matrix back(n, n);
  back.zero();
  reference_gemm(n, n, n, 1.0, solved.data(), solved.ld(), false, u.data(),
                 u.ld(), false, 0.0, back.data(), back.ld());
  EXPECT_LT(max_abs_diff(back.view(), x.view()), 1e-10);
}

TEST(Lu, AgreesWithCholeskyOnSpd) {
  // For SPD A: A = L_c·L_cᵀ (Cholesky) and A = L_u·U (LU). Then
  // U = D·L_cᵀ/√D relationship aside, the simplest cross-check is that both
  // reconstruct A.
  const std::uint32_t n = 64;
  Matrix m = random_matrix(n, n, 36);
  Matrix a(n, n);
  a.zero();
  reference_gemm(n, n, n, 1.0, m.data(), m.ld(), false, m.data(), m.ld(), true,
                 0.0, a.data(), a.ld());
  for (std::uint32_t i = 0; i < n; ++i) a(i, i) += n;
  Matrix packed = a;
  LuConfig cfg;
  lu_nopivot(n, packed.data(), packed.ld(), cfg);
  EXPECT_LT(lu_reconstruction_error(a, packed), 1e-8 * n);
}

}  // namespace
}  // namespace rla
