// Tests of the analytic work/span model (paper §5's critical-path claims).

#include <gtest/gtest.h>

#include <cmath>

#include "core/work_span.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

TEST(WorkSpan, LeafOnly) {
  WorkSpanParams p;
  p.depth = 0;
  p.tile_m = p.tile_k = p.tile_n = 16;
  const WorkSpan ws = analyze_work_span(p);
  EXPECT_DOUBLE_EQ(ws.work, 2.0 * 16 * 16 * 16);
  EXPECT_DOUBLE_EQ(ws.span, ws.work);
  EXPECT_DOUBLE_EQ(ws.parallelism(), 1.0);
}

TEST(WorkSpan, StandardInPlaceClosedForm) {
  // InPlace: W = 8^d * leaf, S = 2^d * leaf.
  WorkSpanParams p;
  p.standard_variant = StandardVariant::InPlace;
  p.tile_m = p.tile_k = p.tile_n = 8;
  const double leaf = 2.0 * 8 * 8 * 8;
  for (int d = 0; d <= 5; ++d) {
    p.depth = d;
    const WorkSpan ws = analyze_work_span(p);
    EXPECT_DOUBLE_EQ(ws.work, std::pow(8.0, d) * leaf) << d;
    EXPECT_DOUBLE_EQ(ws.span, std::pow(2.0, d) * leaf) << d;
  }
}

TEST(WorkSpan, StandardTemporariesFlopCountDominatedByMultiplies) {
  WorkSpanParams p;
  p.depth = 6;
  p.tile_m = p.tile_k = p.tile_n = 16;
  const WorkSpan ws = analyze_work_span(p);
  const double n = 16.0 * 64;  // 1024
  const double mult_flops = 2.0 * n * n * n;
  EXPECT_GT(ws.work, mult_flops);
  EXPECT_LT(ws.work, 1.10 * mult_flops);  // adds/zeros are lower order (~6%)
}

TEST(WorkSpan, StrassenWorkBelowStandard) {
  WorkSpanParams strassen;
  strassen.algorithm = Algorithm::Strassen;
  strassen.depth = 6;
  strassen.tile_m = strassen.tile_k = strassen.tile_n = 16;
  WorkSpanParams standard = strassen;
  standard.algorithm = Algorithm::Standard;
  EXPECT_LT(analyze_work_span(strassen).work, analyze_work_span(standard).work);
}

TEST(WorkSpan, WinogradWorkBelowStrassen) {
  // 15 vs 18 additions per level; same multiplication count.
  WorkSpanParams w;
  w.algorithm = Algorithm::Winograd;
  w.depth = 6;
  w.tile_m = w.tile_k = w.tile_n = 16;
  WorkSpanParams s = w;
  s.algorithm = Algorithm::Strassen;
  EXPECT_LT(analyze_work_span(w).work, analyze_work_span(s).work);
}

TEST(WorkSpan, StandardHasMoreParallelismThanFastAlgorithms) {
  // The paper's §5 observation: parallelism ≈ 40 (standard) vs ≈ 23 (fast)
  // at n = 1000 — the ordering and rough ratio are DAG properties.
  GemmConfig cfg;
  cfg.tiles = TileRange{16, 32, 16};
  cfg.algorithm = Algorithm::Standard;
  const WorkSpan std_ws = analyze_gemm(1000, 1000, 1000, cfg);
  cfg.algorithm = Algorithm::Strassen;
  const WorkSpan str_ws = analyze_gemm(1000, 1000, 1000, cfg);
  cfg.algorithm = Algorithm::Winograd;
  const WorkSpan win_ws = analyze_gemm(1000, 1000, 1000, cfg);
  EXPECT_GT(std_ws.parallelism(), str_ws.parallelism());
  EXPECT_GT(std_ws.parallelism(), win_ws.parallelism());
  // All three have plenty of parallelism for a small SMP.
  EXPECT_GT(str_ws.parallelism(), 4.0);
  EXPECT_GT(win_ws.parallelism(), 4.0);
}

TEST(WorkSpan, ParallelismGrowsWithProblemSize) {
  GemmConfig cfg;
  double last = 0.0;
  for (std::uint32_t n : {128u, 256u, 512u, 1024u}) {
    const WorkSpan ws = analyze_gemm(n, n, n, cfg);
    EXPECT_GT(ws.parallelism(), last) << n;
    last = ws.parallelism();
  }
}

TEST(WorkSpan, SpanIsQuadraticWhileWorkIsCubic) {
  // With the serial streaming additions of §4, the span of the Temporaries
  // variant is dominated by the top-level quadrant additions: Θ(n²) against
  // Θ(n³) work. Doubling depth three times grows work ~8³ and span ~4³.
  WorkSpanParams p;
  p.tile_m = p.tile_k = p.tile_n = 16;
  p.depth = 3;
  const WorkSpan small = analyze_work_span(p);
  p.depth = 6;
  const WorkSpan big = analyze_work_span(p);
  const double work_growth = big.work / small.work;   // ≈ 512
  const double span_growth = big.span / small.span;   // ≈ 64-ish
  EXPECT_NEAR(work_growth, 512.0, 32.0);
  EXPECT_LT(span_growth, 100.0);
  EXPECT_GT(work_growth, 4.0 * span_growth);
}

TEST(WorkSpan, CutoffReducesToStandardModel) {
  WorkSpanParams p;
  p.algorithm = Algorithm::Strassen;
  p.depth = 4;
  p.fast_cutoff_level = 4;  // cutoff at the root: entirely standard
  p.tile_m = p.tile_k = p.tile_n = 8;
  WorkSpanParams q = p;
  q.algorithm = Algorithm::Standard;
  q.fast_cutoff_level = 0;
  EXPECT_DOUBLE_EQ(analyze_work_span(p).work, analyze_work_span(q).work);
  EXPECT_DOUBLE_EQ(analyze_work_span(p).span, analyze_work_span(q).span);
}

TEST(WorkSpan, AnalyzeGemmRejectsUnsplittableShapes) {
  GemmConfig cfg;
  EXPECT_THROW(analyze_gemm(600, 24, 24, cfg), std::invalid_argument);
}

TEST(WorkSpan, RectangularTiles) {
  GemmConfig cfg;
  const WorkSpan ws = analyze_gemm(512, 256, 384, cfg);
  EXPECT_GT(ws.work, 2.0 * 512 * 256 * 384 * 0.99);
  EXPECT_GT(ws.parallelism(), 1.0);
}

}  // namespace
}  // namespace rla
