// Tests of the request-scoped telemetry pipeline: trace-id minting and
// propagation through the pool and the service, the lock-free flight
// recorder (ring semantics, dump format, fatal-signal path), the
// snapshotter's time series, interpolated histogram quantiles, and the
// Unix-socket exposition endpoint.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/rla.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/endpoint.hpp"
#include "obs/telemetry/flight_recorder.hpp"
#include "obs/telemetry/snapshotter.hpp"
#include "obs/telemetry/trace_id.hpp"
#include "parallel/worker_pool.hpp"
#include "robust/fault.hpp"
#include "service/service.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

using namespace std::chrono_literals;
using obs::telemetry::FlightEvent;
using obs::telemetry::FlightEventKind;
using obs::telemetry::FlightRecorder;
using rla::testing::random_matrix;

std::string temp_path(const char* leaf) {
  return ::testing::TempDir() + leaf;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t count_lines_with(const std::string& text, const std::string& needle) {
  std::size_t n = 0;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    if (line.find(needle) != std::string::npos) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Trace ids.

TEST(Telemetry, MintedTraceIdsAreDistinctAcrossThreads) {
  constexpr int kThreads = 8, kPer = 200;
  std::vector<std::vector<std::uint64_t>> minted(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&minted, t] {
      for (int i = 0; i < kPer; ++i) {
        minted[static_cast<std::size_t>(t)].push_back(
            obs::telemetry::mint_trace_id());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> all;
  for (const auto& batch : minted) {
    for (std::uint64_t id : batch) {
      EXPECT_NE(id, 0u);
      EXPECT_TRUE(all.insert(id).second) << "duplicate trace id " << id;
    }
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPer);
}

TEST(Telemetry, TraceIdScopeRestoresOnExit) {
  obs::set_current_trace_id(0);
  {
    obs::TraceIdScope outer(41);
    EXPECT_EQ(obs::current_trace_id(), 41u);
    {
      obs::TraceIdScope inner(42);
      EXPECT_EQ(obs::current_trace_id(), 42u);
    }
    EXPECT_EQ(obs::current_trace_id(), 41u);
  }
  EXPECT_EQ(obs::current_trace_id(), 0u);
}

TEST(Telemetry, TaskGroupPropagatesAmbientTraceToWorkers) {
  WorkerPool pool(3);
  obs::TraceIdScope scope(777);
  std::atomic<int> wrong{0};
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 200; ++i) {
    group.spawn([&] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (obs::current_trace_id() != 777) {
        wrong.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 200);
  EXPECT_EQ(wrong.load(), 0) << "tasks observed a foreign trace id";
}

// ---------------------------------------------------------------------------
// Flight recorder.

TEST(Telemetry, FlightRingOverwritesOldestAndKeepsOrder) {
  FlightRecorder rec(16);
  EXPECT_EQ(rec.capacity(), 16u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    rec.record(FlightEventKind::Queue, i, i + 1000,
               static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(rec.recorded(), 100u);
  EXPECT_EQ(rec.dropped(), 84u);
  const std::vector<FlightEvent> window = rec.snapshot();
  ASSERT_EQ(window.size(), 16u);
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].seq, 84u + i);  // oldest survivor first
    EXPECT_EQ(window[i].request, 84u + i);
    EXPECT_EQ(window[i].trace, 1084u + i);
    EXPECT_EQ(window[i].detail, static_cast<std::int64_t>(84 + i));
  }
}

TEST(Telemetry, FlightSnapshotStaysCoherentUnderConcurrentWriters) {
  FlightRecorder rec(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&rec, &stop, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        rec.record(FlightEventKind::Start, static_cast<std::uint64_t>(t),
                   static_cast<std::uint64_t>(t), static_cast<std::int64_t>(i++));
      }
    });
  }
  for (int iter = 0; iter < 50; ++iter) {
    const std::vector<FlightEvent> window = rec.snapshot();
    EXPECT_LE(window.size(), 64u);
    for (std::size_t i = 1; i < window.size(); ++i) {
      EXPECT_LT(window[i - 1].seq, window[i].seq);  // ordered, no duplicates
    }
    for (const FlightEvent& ev : window) {
      EXPECT_LT(ev.request, 4u);  // payload matches some writer, never torn
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writers) th.join();
}

TEST(Telemetry, FlightDumpFdWritesParseableJsonl) {
  FlightRecorder rec(32);
  rec.record(FlightEventKind::Admit, 7, 70, 3);
  rec.record(FlightEventKind::Queue, 7, 70, 1);
  rec.record(FlightEventKind::Finalize, 7, 70, 0);
  const std::string path = temp_path("rla_flight_dump.jsonl");
  ASSERT_TRUE(rec.dump_to_path(path.c_str()));
  const std::string text = slurp(path);
  EXPECT_EQ(count_lines_with(text, "\"kind\":\"flight_recorder\""), 1u);
  EXPECT_EQ(count_lines_with(text, "\"event\":\"admit\""), 1u);
  EXPECT_EQ(count_lines_with(text, "\"event\":\"queue\""), 1u);
  EXPECT_EQ(count_lines_with(text, "\"event\":\"finalize\""), 1u);
  EXPECT_NE(text.find("\"recorded\":3"), std::string::npos);
  EXPECT_NE(text.find("\"request\":7"), std::string::npos);
  EXPECT_NE(text.find("\"trace\":70"), std::string::npos);
  std::remove(path.c_str());
}

using TelemetryDeathTest = ::testing::Test;

TEST(TelemetryDeathTest, FatalSignalDumpsBundleBeforeDying) {
  FlightRecorder rec(32);
  rec.record(FlightEventKind::Admit, 9, 90, 0);
  const std::string path = temp_path("rla_fatal_dump.jsonl");
  std::remove(path.c_str());
  obs::telemetry::install_fatal_dump(&rec, path.c_str());
  EXPECT_DEATH(std::raise(SIGSEGV), "");
  obs::telemetry::install_fatal_dump(nullptr, nullptr);
  // The death-test child ran the (async-signal-safe) handler on its way out;
  // the dump it wrote is visible to us.
  const std::string text = slurp(path);
  EXPECT_EQ(count_lines_with(text, "\"kind\":\"flight_recorder\""), 1u);
  EXPECT_EQ(count_lines_with(text, "\"event\":\"admit\""), 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Interpolated quantiles.

TEST(Telemetry, QuantileInterpolatedEdgeCases) {
  obs::Histogram h;
  EXPECT_EQ(h.quantile_interpolated(0.5), 0.0);  // empty
  h.record(37);
  EXPECT_EQ(h.quantile_interpolated(0.0), 37.0);  // single sample is exact
  EXPECT_EQ(h.quantile_interpolated(0.5), 37.0);
  EXPECT_EQ(h.quantile_interpolated(1.0), 37.0);
}

TEST(Telemetry, QuantileInterpolatedTracksUniformData) {
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) h.record(i);
  const double p50 = h.quantile_interpolated(0.50);
  const double p95 = h.quantile_interpolated(0.95);
  const double p99 = h.quantile_interpolated(0.99);
  // Log2 buckets bound the error to within the enclosing bucket.
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 64.0);
  EXPECT_GE(p95, 64.0);
  EXPECT_LE(p95, 99.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, 99.0);  // interpolation clamps to the observed max
}

// ---------------------------------------------------------------------------
// Snapshotter.

TEST(Telemetry, SnapshotterSamplesPeriodicallyAndOnStop) {
  std::atomic<int> calls{0};
  obs::telemetry::Snapshotter::Options opts;
  opts.period = 5ms;
  opts.ring = 64;
  obs::telemetry::Snapshotter snap(
      [&calls] {
        calls.fetch_add(1, std::memory_order_relaxed);
        obs::json::Value doc = obs::json::Value::object();
        doc.set("probe", obs::json::Value::number(std::int64_t{1}));
        return doc;
      },
      opts);
  std::this_thread::sleep_for(40ms);
  snap.stop();
  snap.stop();  // idempotent
  const std::uint64_t taken = snap.samples();
  EXPECT_GE(taken, 2u);  // several periods plus the final stop() sample
  EXPECT_EQ(taken, static_cast<std::uint64_t>(calls.load()));
  const std::string jsonl = snap.jsonl();
  EXPECT_EQ(count_lines_with(jsonl, "\"t_ns\""), std::min<std::uint64_t>(taken, 64));
  EXPECT_EQ(count_lines_with(jsonl, "\"probe\":1"), std::min<std::uint64_t>(taken, 64));
}

TEST(Telemetry, SnapshotterRingRetainsNewestSamples) {
  std::atomic<std::int64_t> tick{0};
  obs::telemetry::Snapshotter::Options opts;
  opts.period = 1h;  // no periodic samples; we drive sample_now() by hand
  opts.ring = 4;
  obs::telemetry::Snapshotter snap(
      [&tick] {
        obs::json::Value doc = obs::json::Value::object();
        doc.set("tick", obs::json::Value::number(
                            tick.fetch_add(1, std::memory_order_relaxed)));
        return doc;
      },
      opts);
  for (int i = 0; i < 10; ++i) snap.sample_now();
  const std::string jsonl = snap.jsonl();
  EXPECT_EQ(count_lines_with(jsonl, "\"tick\""), 4u);
  EXPECT_NE(jsonl.find("\"tick\":9"), std::string::npos);   // newest kept
  EXPECT_EQ(jsonl.find("\"tick\":5"), std::string::npos);   // oldest evicted
  snap.stop();
}

// ---------------------------------------------------------------------------
// Exposition endpoint.

std::string read_from_socket(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::string doc;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    doc.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return doc;
}

TEST(Telemetry, ExpositionServerServesOneDocumentPerConnection) {
  const std::string path = temp_path("rla_expo.sock");
  std::remove(path.c_str());
  std::atomic<int> renders{0};
  obs::telemetry::ExpositionServer server(path, [&renders] {
    renders.fetch_add(1, std::memory_order_relaxed);
    return std::string("# TYPE rla_probe counter\nrla_probe 1\n");
  });
  ASSERT_TRUE(server.ok()) << server.error();
  for (int i = 0; i < 3; ++i) {
    const std::string doc = read_from_socket(path);
    EXPECT_NE(doc.find("rla_probe 1"), std::string::npos);
  }
  // served() counts accepted connections; give the accept loop a beat.
  for (int i = 0; i < 100 && server.served() < 3; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(server.served(), 3u);
  EXPECT_EQ(renders.load(), 3);
  server.stop();
  server.stop();  // idempotent
  EXPECT_EQ(read_from_socket(path), "");  // socket is gone after stop
}

// ---------------------------------------------------------------------------
// Service integration.

namespace svc = rla::service;

struct Job {
  Matrix a, b, c;
  svc::Request req;

  Job(std::uint32_t m, std::uint32_t n, std::uint32_t k, std::uint64_t seed)
      : a(random_matrix(m, k, seed)), b(random_matrix(k, n, seed + 1)), c(m, n) {
    c.zero();
    req.m = m;
    req.n = n;
    req.k = k;
    req.a = a.data();
    req.lda = a.ld();
    req.b = b.data();
    req.ldb = b.ld();
    req.c = c.data();
    req.ldc = c.ld();
  }
};

svc::ServiceConfig small_config() {
  svc::ServiceConfig cfg;
  cfg.threads = 2;
  cfg.executors = 2;
  cfg.max_inflight = 64;
  cfg.watchdog_period = 5ms;
  return cfg;
}

TEST(Telemetry, ServiceMintsDistinctTraceIdsUnderConcurrentSubmit) {
  svc::GemmService service(small_config());
  constexpr int kThreads = 4, kPer = 4;
  std::vector<std::unique_ptr<Job>> jobs;
  for (int i = 0; i < kThreads * kPer; ++i) {
    jobs.push_back(std::make_unique<Job>(48, 48, 48, 100 + i));
  }
  std::vector<std::future<svc::Response>> futures(jobs.size());
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        const int idx = t * kPer + i;
        futures[static_cast<std::size_t>(idx)] =
            service.submit(jobs[static_cast<std::size_t>(idx)]->req);
      }
    });
  }
  for (auto& th : submitters) th.join();
  std::set<std::uint64_t> traces;
  for (auto& f : futures) {
    const svc::Response r = f.get();
    ASSERT_EQ(r.outcome, svc::Outcome::Completed);
    EXPECT_NE(r.trace_id, 0u);
    EXPECT_TRUE(traces.insert(r.trace_id).second)
        << "trace id " << r.trace_id << " reused across requests";
    // The profile the gemm driver filled carries the same trace id the
    // service minted — this is the join key between per-request artifacts.
    EXPECT_EQ(r.profile.trace_id, r.trace_id);
  }
}

TEST(Telemetry, ServiceFlightBundleClosesInflightTable) {
  svc::ServiceConfig cfg = small_config();
  cfg.executors = 1;
  svc::GemmService service(cfg);
  fault::ScopedPlan stall("service.stall:nth=1");

  Job blocker(32, 32, 32, 1);
  auto blocker_future = service.submit(blocker.req);
  std::this_thread::sleep_for(20ms);  // executor now dark in the stall

  std::vector<std::unique_ptr<Job>> queued;
  std::vector<std::future<svc::Response>> futures;
  for (int i = 0; i < 3; ++i) {
    queued.push_back(std::make_unique<Job>(32, 32, 32, 200 + i));
    futures.push_back(service.submit(queued.back()->req));
  }

  const std::string path = temp_path("rla_bundle.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(service.dump_flight_bundle(path));
  const std::string text = slurp(path);
  EXPECT_EQ(count_lines_with(text, "\"kind\":\"flight_recorder\""), 1u);
  EXPECT_EQ(count_lines_with(text, "\"kind\":\"bundle_end\""), 1u);
  // 1 running blocker + 3 queued, all open at dump time.
  EXPECT_EQ(count_lines_with(text, "\"kind\":\"inflight\""), 4u);
  EXPECT_NE(text.find("\"open\":4"), std::string::npos);
  EXPECT_EQ(count_lines_with(text, "\"state\":\"running\""), 1u);
  EXPECT_EQ(count_lines_with(text, "\"state\":\"queued\""), 3u);
  EXPECT_EQ(count_lines_with(text, "\"event\":\"admit\""), 4u);
  EXPECT_EQ(count_lines_with(text, "\"event\":\"finalize\""), 0u);

  blocker_future.get();
  for (auto& f : futures) f.get();
  std::remove(path.c_str());
}

TEST(Telemetry, ServiceStatusAndPrometheusExposeLiveState) {
  svc::GemmService service(small_config());
  Job job(64, 64, 64, 5);
  service.submit(job.req).get();

  const std::string status = service.status_json();
  EXPECT_NE(status.find("\"requests\":[]"), std::string::npos);  // drained
  EXPECT_NE(status.find("\"in_flight\":0"), std::string::npos);
  EXPECT_NE(status.find("\"flight_recorded\""), std::string::npos);

  const std::string expo = service.telemetry_prometheus();
  EXPECT_NE(expo.find("# TYPE rla_service_submitted counter"),
            std::string::npos);
  EXPECT_NE(expo.find("rla_service_submitted 1"), std::string::npos);
  EXPECT_NE(expo.find("rla_service_slo_deadline_miss_ppm 0"),
            std::string::npos);
  EXPECT_NE(expo.find("rla_service_total_ns_bucket"), std::string::npos);
}

}  // namespace
}  // namespace rla
