// Tests of the recursion-resolved profiler (obs/treeprof/, DESIGN.md §16):
// path encoding, arming and the busy degradation, per-depth reconciliation
// against the compute phase, depth-cap rollup, behaviour under injected
// degradation and mid-tree task faults, the JSON round-trip of the folded
// tree, and the flamegraph folded-stack renderer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/gemm.hpp"
#include "obs/treeprof/treeprof.hpp"
#include "robust/error.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

using rla::testing::random_matrix;
namespace treeprof = obs::treeprof;

/// One C = A·B against the naive reference; returns max deviation and fills
/// *profile. Same shape as test_fault.cpp's runner.
double run_vs_reference(std::uint32_t n, const GemmConfig& cfg,
                        GemmProfile* profile, std::uint64_t seed = 7) {
  Matrix a = random_matrix(n, n, seed);
  Matrix b = random_matrix(n, n, seed + 1);
  Matrix c(n, n);
  c.zero();
  Matrix c_ref = c;
  gemm(n, n, n, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
       0.0, c.data(), c.ld(), cfg, profile);
  reference_gemm(n, n, n, 1.0, a.data(), a.ld(), false, b.data(), b.ld(),
                 false, 0.0, c_ref.data(), c_ref.ld());
  return max_abs_diff(c.view(), c_ref.view());
}

bool trail_contains(const GemmProfile& profile, std::string_view needle) {
  for (const std::string& step : profile.degradation_trail) {
    if (step.find(needle) != std::string::npos) return true;
  }
  return false;
}

int key_depth(const std::string& key) {
  return std::atoi(key.c_str() + 1);  // "d3:021" -> 3
}

std::uint64_t tree_time_ns(const GemmProfile& profile) {
  std::uint64_t total = 0;
  for (const auto& node : profile.tree_profile) total += node.time_ns;
  return total;
}

std::uint64_t tree_flops(const GemmProfile& profile) {
  std::uint64_t total = 0;
  for (const auto& node : profile.tree_profile) total += node.flops;
  return total;
}

// ---------------------------------------------------------------------------
// Path encoding.

TEST(TreeprofPath, EncodingAndRendering) {
  EXPECT_EQ(treeprof::path_depth(treeprof::kRootPath), 0);
  EXPECT_EQ(treeprof::path_key(treeprof::kRootPath), "d0");

  const std::uint64_t c2 = treeprof::child_path(treeprof::kRootPath, 2);
  EXPECT_EQ(c2, 0b1'010u);
  EXPECT_EQ(treeprof::path_depth(c2), 1);
  EXPECT_EQ(treeprof::path_digit(c2, 0), 2u);
  EXPECT_EQ(treeprof::path_key(c2), "d1:2");

  // Digits render root-first: child 0 of child 2 of child 1.
  std::uint64_t p = treeprof::kRootPath;
  p = treeprof::child_path(p, 1);
  p = treeprof::child_path(p, 2);
  p = treeprof::child_path(p, 0);
  EXPECT_EQ(treeprof::path_depth(p), 3);
  EXPECT_EQ(treeprof::path_key(p), "d3:120");
  EXPECT_EQ(treeprof::path_digit(p, 0), 1u);
  EXPECT_EQ(treeprof::path_digit(p, 1), 2u);
  EXPECT_EQ(treeprof::path_digit(p, 2), 0u);
}

TEST(TreeprofPath, MaxDepthPathStillRoundTrips) {
  std::uint64_t p = treeprof::kRootPath;
  std::string digits;
  for (int i = 0; i < treeprof::kMaxPathDepth; ++i) {
    const unsigned d = static_cast<unsigned>(i % 7);
    p = treeprof::child_path(p, d);
    digits += static_cast<char>('0' + d);
  }
  EXPECT_EQ(treeprof::path_depth(p), treeprof::kMaxPathDepth);
  EXPECT_EQ(treeprof::path_key(p),
            "d" + std::to_string(treeprof::kMaxPathDepth) + ":" + digits);
}

TEST(TreeprofPath, FoldedStacksRendering) {
  const std::string out = treeprof::folded_stacks(
      {{"d0", 10}, {"d1:2", 20}, {"d3:021", 5}});
  EXPECT_EQ(out, "gemm 10\ngemm;2 20\ngemm;0;2;1 5\n");
}

// ---------------------------------------------------------------------------
// Disarmed and busy paths.

TEST(TreeprofGemm, DisarmedRunLeavesTreeEmpty) {
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(96, cfg, &profile), 1e-10);
  EXPECT_FALSE(profile.tree_measured);
  EXPECT_TRUE(profile.tree_profile.empty());
}

TEST(TreeprofGemm, BusySlotDegradesToUnprofiled) {
  treeprof::Session outer;
  ASSERT_TRUE(outer.try_attach());
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.tree_profile = true;
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(96, cfg, &profile), 1e-10);
  EXPECT_FALSE(profile.tree_measured);
  EXPECT_TRUE(profile.tree_profile.empty());
  EXPECT_TRUE(trail_contains(profile, "treeprof:busy"));
  outer.detach();

  // Slot released: the next armed run profiles normally.
  GemmProfile clean;
  EXPECT_LT(run_vs_reference(96, cfg, &clean), 1e-10);
  EXPECT_TRUE(clean.tree_measured);
  EXPECT_FALSE(clean.tree_profile.empty());
}

// ---------------------------------------------------------------------------
// Reconciliation: the per-depth exclusive sums cover the compute phase.

TEST(TreeprofGemm, SerialExclusiveTimesReconcileWithComputePhase) {
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Standard;
  cfg.threads = 1;
  cfg.tree_profile = true;
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(256, cfg, &profile), 1e-9);
  ASSERT_TRUE(profile.tree_measured);
  ASSERT_FALSE(profile.tree_profile.empty());

  // Exclusive sums on one thread cannot exceed the compute wall time (same
  // clock, frames nest), and the frames should cover nearly all of it. The
  // lower bound is deliberately loose against CI scheduling noise.
  const double compute_ns = profile.compute * 1e9;
  const double tree_ns = static_cast<double>(tree_time_ns(profile));
  EXPECT_LE(tree_ns, compute_ns * 1.02 + 2e6);
  EXPECT_GE(tree_ns, compute_ns * 0.70);

  // Leaf multiplies alone contribute 2n^3 FLOPs; block-add passes only add.
  EXPECT_GE(tree_flops(profile), 2ull * 256 * 256 * 256);

  // Folded list is sorted by (depth, path): depths never decrease, the root
  // comes first, and no node exceeds the session cap.
  EXPECT_EQ(profile.tree_profile.front().key, "d0");
  int prev = 0;
  for (const auto& node : profile.tree_profile) {
    const int d = key_depth(node.key);
    EXPECT_GE(d, prev);
    EXPECT_LE(d, treeprof::default_max_depth());
    prev = d;
  }
}

TEST(TreeprofGemm, DepthCapRollsDeepCostIntoAncestors) {
  ::setenv("RLA_TREEPROF_MAX_DEPTH", "1", 1);
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Standard;
  cfg.threads = 1;
  cfg.tree_profile = true;
  GemmProfile profile;
  const double err = run_vs_reference(128, cfg, &profile);
  ::unsetenv("RLA_TREEPROF_MAX_DEPTH");
  EXPECT_LT(err, 1e-10);
  ASSERT_TRUE(profile.tree_measured);
  ASSERT_FALSE(profile.tree_profile.empty());
  int max_depth = 0;
  for (const auto& node : profile.tree_profile) {
    max_depth = std::max(max_depth, key_depth(node.key));
  }
  EXPECT_LE(max_depth, 1);
  // Rollup conserves cost: the capped tree still carries every leaf FLOP.
  EXPECT_GE(tree_flops(profile), 2ull * 128 * 128 * 128);
}

TEST(TreeprofGemm, ParallelStrassenTreeCoversLeafWork) {
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Strassen;
  cfg.threads = 4;
  cfg.tree_profile = true;
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(256, cfg, &profile), 1e-9);
  ASSERT_TRUE(profile.tree_measured);
  ASSERT_FALSE(profile.tree_profile.empty());
  // Exclusive time is CPU time summed across workers: bounded by the
  // compute wall times the worker count, and nonzero.
  const unsigned workers = std::max(1u, profile.sched.workers);
  const double budget_ns = profile.compute * 1e9 * workers;
  const double tree_ns = static_cast<double>(tree_time_ns(profile));
  EXPECT_GT(tree_ns, 0.0);
  EXPECT_LE(tree_ns, budget_ns * 1.05 + 2e6);
  // Strassen at depth >= 1 shows seven children of the root.
  bool saw_child = false;
  for (const auto& node : profile.tree_profile) {
    if (key_depth(node.key) == 1) saw_child = true;
  }
  EXPECT_TRUE(saw_child);
}

// ---------------------------------------------------------------------------
// Degradation and faults.

TEST(TreeprofGemm, TreeSurvivesAllocDegradationLadder) {
  // Persistent tiled-alloc failure walks the ladder down to the canonical
  // in-place path; the tree must still be measured and reconcile — the
  // instrumentation rides the nodes that actually executed.
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Strassen;
  cfg.threads = 1;
  cfg.tree_profile = true;
  cfg.fault_spec = "alloc.tiled:p=1";
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(128, cfg, &profile), 1e-9);
  EXPECT_TRUE(trail_contains(profile, "alloc:standard-inplace"));
  ASSERT_TRUE(profile.tree_measured);
  ASSERT_FALSE(profile.tree_profile.empty());
  // The final successful pass alone multiplies 2n^3; aborted attempts only
  // add on top.
  EXPECT_GE(tree_flops(profile), 2ull * 128 * 128 * 128);
  EXPECT_GT(tree_time_ns(profile), 0u);
}

TEST(TreeprofGemm, MidTreeTaskFaultReleasesTheSessionSlot) {
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.tree_profile = true;
  cfg.fault_spec = "task.throw:nth=3";
  Matrix a = random_matrix(64, 64, 1), b = random_matrix(64, 64, 2);
  Matrix c(64, 64);
  c.zero();
  EXPECT_THROW(gemm(64, 64, 64, 1.0, a.data(), a.ld(), Op::None, b.data(),
                    b.ld(), Op::None, 0.0, c.data(), c.ld(), cfg),
               Error);
  // The throw unwound through the armed session; the global slot must be
  // free again or every later profiled run degrades to "treeprof:busy".
  GemmConfig clean = cfg;
  clean.fault_spec.clear();
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(96, clean, &profile), 1e-10);
  EXPECT_TRUE(profile.tree_measured);
  EXPECT_FALSE(profile.tree_profile.empty());
  EXPECT_FALSE(trail_contains(profile, "treeprof:busy"));
}

// ---------------------------------------------------------------------------
// JSON round-trip.

TEST(TreeprofGemm, TreeProfileRoundTripsThroughJson) {
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Standard;
  cfg.threads = 1;
  cfg.tree_profile = true;
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(128, cfg, &profile), 1e-10);
  ASSERT_TRUE(profile.tree_measured);
  ASSERT_FALSE(profile.tree_profile.empty());

  const std::string text = profile.to_json();
  GemmProfile parsed;
  ASSERT_TRUE(GemmProfile::from_json(text, parsed));
  EXPECT_EQ(parsed.to_json(), text);
  EXPECT_TRUE(parsed.tree_measured);
  ASSERT_EQ(parsed.tree_profile.size(), profile.tree_profile.size());
  for (std::size_t i = 0; i < parsed.tree_profile.size(); ++i) {
    EXPECT_EQ(parsed.tree_profile[i].key, profile.tree_profile[i].key);
    EXPECT_EQ(parsed.tree_profile[i].time_ns, profile.tree_profile[i].time_ns);
    EXPECT_EQ(parsed.tree_profile[i].flops, profile.tree_profile[i].flops);
    EXPECT_EQ(parsed.tree_profile[i].tasks, profile.tree_profile[i].tasks);
    EXPECT_EQ(parsed.tree_profile[i].hw_valid,
              profile.tree_profile[i].hw_valid);
  }
}

}  // namespace
}  // namespace rla
