// Tests of the public dgemm-compatible driver: full BLAS semantics across
// every layout × algorithm, padding, forced depths, wide/lean splitting, and
// argument validation.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "core/gemm.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

using rla::testing::gemm_vs_reference;

constexpr Curve kGemmLayouts[] = {Curve::ColMajor,   Curve::UMorton,
                                  Curve::XMorton,    Curve::ZMorton,
                                  Curve::GrayMorton, Curve::Hilbert};

class GemmCrossTest
    : public ::testing::TestWithParam<std::tuple<Curve, Algorithm>> {};

TEST_P(GemmCrossTest, SquareModerate) {
  const auto [layout, alg] = GetParam();
  GemmConfig cfg;
  cfg.layout = layout;
  cfg.algorithm = alg;
  EXPECT_LT(gemm_vs_reference(100, 100, 100, 1.0, Op::None, Op::None, 0.0, cfg),
            1e-10);
}

TEST_P(GemmCrossTest, AlphaBetaCombination) {
  const auto [layout, alg] = GetParam();
  GemmConfig cfg;
  cfg.layout = layout;
  cfg.algorithm = alg;
  EXPECT_LT(gemm_vs_reference(64, 64, 64, -0.5, Op::None, Op::None, 2.0, cfg),
            1e-10);
}

TEST_P(GemmCrossTest, TransposedOperands) {
  const auto [layout, alg] = GetParam();
  GemmConfig cfg;
  cfg.layout = layout;
  cfg.algorithm = alg;
  EXPECT_LT(gemm_vs_reference(48, 56, 40, 1.0, Op::Transpose, Op::None, 1.0, cfg),
            1e-10);
  EXPECT_LT(gemm_vs_reference(48, 56, 40, 1.0, Op::None, Op::Transpose, 0.0, cfg),
            1e-10);
  EXPECT_LT(
      gemm_vs_reference(48, 56, 40, 2.0, Op::Transpose, Op::Transpose, -1.0, cfg),
      1e-10);
}

TEST_P(GemmCrossTest, RectangularSquat) {
  const auto [layout, alg] = GetParam();
  GemmConfig cfg;
  cfg.layout = layout;
  cfg.algorithm = alg;
  EXPECT_LT(gemm_vs_reference(90, 60, 120, 1.0, Op::None, Op::None, 0.0, cfg),
            1e-10);
}

TEST_P(GemmCrossTest, ParallelExecution) {
  const auto [layout, alg] = GetParam();
  GemmConfig cfg;
  cfg.layout = layout;
  cfg.algorithm = alg;
  cfg.threads = 4;
  EXPECT_LT(gemm_vs_reference(96, 96, 96, 1.0, Op::None, Op::None, 1.0, cfg),
            1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    LayoutByAlgorithm, GemmCrossTest,
    ::testing::Combine(::testing::ValuesIn(kGemmLayouts),
                       ::testing::Values(Algorithm::Standard, Algorithm::Strassen,
                                         Algorithm::Winograd)),
    [](const ::testing::TestParamInfo<GemmCrossTest::ParamType>& info) {
      return rla::testing::sanitize(curve_name(std::get<0>(info.param))) + "_" +
             rla::testing::sanitize(algorithm_name(std::get<1>(info.param)));
    });

TEST(Gemm, WideShapeSplits) {
  // m much larger than n/k: no shared depth exists, Fig. 3 splitting kicks in.
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  GemmProfile profile;
  Matrix a = rla::testing::random_matrix(600, 24, 1);
  Matrix b = rla::testing::random_matrix(24, 24, 2);
  Matrix c(600, 24);
  Matrix c_ref(600, 24);
  c.zero();
  c_ref.zero();
  gemm(600, 24, 24, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
       0.0, c.data(), c.ld(), cfg, &profile);
  reference_gemm(600, 24, 24, 1.0, a.data(), a.ld(), false, b.data(), b.ld(),
                 false, 0.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-10);
  EXPECT_GT(profile.splits, 0);
}

TEST(Gemm, LeanShapeSplits) {
  GemmConfig cfg;
  cfg.layout = Curve::Hilbert;
  GemmProfile profile;
  EXPECT_LT(gemm_vs_reference(24, 600, 24, 1.0, Op::None, Op::None, 1.0, cfg),
            1e-10);
  // And an inner-dimension (k) split, which must accumulate correctly.
  EXPECT_LT(gemm_vs_reference(24, 24, 600, 1.5, Op::None, Op::None, -0.5, cfg),
            1e-10);
}

TEST(Gemm, SplitShapesAcrossAlgorithms) {
  for (Algorithm alg :
       {Algorithm::Standard, Algorithm::Strassen, Algorithm::Winograd}) {
    GemmConfig cfg;
    cfg.layout = Curve::ZMorton;
    cfg.algorithm = alg;
    EXPECT_LT(gemm_vs_reference(300, 20, 150, 1.0, Op::None, Op::None, 0.0, cfg),
              1e-9)
        << algorithm_name(alg);
  }
}

TEST(Gemm, TinyAndDegenerateSizes) {
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  for (std::uint32_t s : {1u, 2u, 3u, 5u, 8u, 15u, 16u, 17u}) {
    EXPECT_LT(gemm_vs_reference(s, s, s, 1.0, Op::None, Op::None, 0.5, cfg), 1e-11)
        << s;
  }
  EXPECT_LT(gemm_vs_reference(1, 1, 1, 3.0, Op::Transpose, Op::Transpose, 2.0, cfg),
            1e-12);
}

TEST(Gemm, AlphaZeroOnlyScalesC) {
  GemmConfig cfg;
  // A/B may be null when alpha == 0 (pure C scaling).
  Matrix c = rla::testing::random_matrix(10, 10, 3);
  Matrix expected = c;
  gemm(10, 10, 10, 0.0, nullptr, 10, Op::None, nullptr, 10, Op::None, 0.5,
       c.data(), c.ld(), cfg);
  for (std::uint32_t j = 0; j < 10; ++j) {
    for (std::uint32_t i = 0; i < 10; ++i) {
      ASSERT_DOUBLE_EQ(c(i, j), 0.5 * expected(i, j));
    }
  }
}

TEST(Gemm, KZeroActsAsScale) {
  GemmConfig cfg;
  Matrix c = rla::testing::random_matrix(6, 6, 4);
  Matrix expected = c;
  gemm(6, 6, 0, 1.0, nullptr, 1, Op::None, nullptr, 1, Op::None, -1.0, c.data(),
       c.ld(), cfg);
  for (std::uint32_t j = 0; j < 6; ++j) {
    for (std::uint32_t i = 0; i < 6; ++i) {
      ASSERT_DOUBLE_EQ(c(i, j), -expected(i, j));
    }
  }
}

TEST(Gemm, BetaZeroIgnoresGarbageC) {
  GemmConfig cfg;
  cfg.layout = Curve::GrayMorton;
  Matrix a = rla::testing::random_matrix(20, 20, 5);
  Matrix b = rla::testing::random_matrix(20, 20, 6);
  Matrix c(20, 20);
  c.fill([](auto, auto) { return std::numeric_limits<double>::quiet_NaN(); });
  gemm(20, 20, 20, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
       0.0, c.data(), c.ld(), cfg);
  Matrix c_ref(20, 20);
  c_ref.zero();
  reference_gemm(20, 20, 20, 1.0, a.data(), a.ld(), false, b.data(), b.ld(),
                 false, 0.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-12);
}

// BLAS semantics: beta == 0 must overwrite C without reading it, so NaN or
// Inf garbage in the output buffer can never leak into the product. Sweep
// the distinct drivers (tiled recursive vs. canonical in-place) and the
// fast algorithms, whose quadrant adds are the easiest place to regress.
TEST(Gemm, BetaZeroPoisonSweepAcrossDriversAndAlgorithms) {
  constexpr std::uint32_t m = 24, n = 40, k = 32;  // non-square forces splits
  Matrix a = rla::testing::random_matrix(m, k, 11);
  Matrix b = rla::testing::random_matrix(k, n, 12);
  Matrix c_ref(m, n);
  c_ref.zero();
  reference_gemm(m, n, k, 1.0, a.data(), a.ld(), false, b.data(), b.ld(),
                 false, 0.0, c_ref.data(), c_ref.ld());
  const double poisons[] = {std::numeric_limits<double>::quiet_NaN(),
                            std::numeric_limits<double>::infinity()};
  for (const Curve layout : {Curve::ZMorton, Curve::ColMajor}) {
    for (const Algorithm algo :
         {Algorithm::Standard, Algorithm::Strassen, Algorithm::Winograd}) {
      for (const bool verify : {false, true}) {
        for (const double poison : poisons) {
          GemmConfig cfg;
          cfg.layout = layout;
          cfg.algorithm = algo;
          cfg.verify = verify;
          Matrix c(m, n);
          c.fill([&](auto, auto) { return poison; });
          gemm(m, n, k, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(),
               Op::None, 0.0, c.data(), c.ld(), cfg);
          const double diff = max_abs_diff(c.view(), c_ref.view());
          EXPECT_TRUE(std::isfinite(diff) && diff < 1e-10)
              << "layout=" << static_cast<int>(layout)
              << " algo=" << static_cast<int>(algo) << " verify=" << verify
              << " poison=" << poison << " diff=" << diff;
        }
      }
    }
  }
}

// The alpha == 0 / k == 0 early-outs reduce to C ← beta·C; with beta == 0
// they must store zeros rather than multiply the poison by zero.
TEST(Gemm, BetaZeroEarlyOutsOverwritePoison) {
  GemmConfig cfg;
  cfg.layout = Curve::Hilbert;
  for (const bool zero_alpha : {true, false}) {
    Matrix a = rla::testing::random_matrix(8, 8, 21);
    Matrix b = rla::testing::random_matrix(8, 8, 22);
    Matrix c(8, 8);
    c.fill([](auto, auto) { return std::numeric_limits<double>::quiet_NaN(); });
    const double alpha = zero_alpha ? 0.0 : 1.0;
    const std::uint32_t k = zero_alpha ? 8 : 0;  // other path: k == 0
    gemm(8, 8, k, alpha, a.data(), a.ld(), Op::None, b.data(), b.ld(),
         Op::None, 0.0, c.data(), c.ld(), cfg);
    for (std::uint32_t j = 0; j < 8; ++j) {
      for (std::uint32_t i = 0; i < 8; ++i) {
        ASSERT_EQ(c(i, j), 0.0) << "zero_alpha=" << zero_alpha;
      }
    }
  }
}

TEST(Gemm, ForcedDepthSweepStaysCorrect) {
  // The Fig. 4 experiment forces the recursion depth (tile size); every
  // forced depth must still compute the right product.
  for (int depth = 0; depth <= 6; ++depth) {
    GemmConfig cfg;
    cfg.layout = Curve::ZMorton;
    cfg.forced_depth = depth;
    EXPECT_LT(gemm_vs_reference(64, 64, 64, 1.0, Op::None, Op::None, 0.0, cfg),
              1e-10)
        << "depth=" << depth;
  }
}

TEST(Gemm, ProfileBreakdownIsPopulated) {
  GemmConfig cfg;
  cfg.layout = Curve::Hilbert;
  GemmProfile profile;
  Matrix a = rla::testing::random_matrix(128, 128, 7);
  Matrix b = rla::testing::random_matrix(128, 128, 8);
  Matrix c(128, 128);
  c.zero();
  gemm(128, 128, 128, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
       0.0, c.data(), c.ld(), cfg, &profile);
  EXPECT_GT(profile.total, 0.0);
  EXPECT_GT(profile.compute, 0.0);
  EXPECT_GT(profile.convert_in, 0.0);
  EXPECT_GE(profile.depth, 0);
  EXPECT_GE(profile.tile_m, 1u);
  EXPECT_EQ(profile.splits, 0);
}

TEST(Gemm, ArgumentValidation) {
  GemmConfig cfg;
  Matrix a(4, 4), b(4, 4), c(4, 4);
  EXPECT_THROW(gemm(4, 4, 4, 1.0, a.data(), 4, Op::None, b.data(), 4, Op::None,
                    0.0, nullptr, 4, cfg),
               std::invalid_argument);
  EXPECT_THROW(gemm(4, 4, 4, 1.0, a.data(), 2 /*lda<m*/, Op::None, b.data(), 4,
                    Op::None, 0.0, c.data(), 4, cfg),
               std::invalid_argument);
  EXPECT_THROW(gemm(4, 4, 4, 1.0, a.data(), 4, Op::None, b.data(), 2 /*ldb<k*/,
                    Op::None, 0.0, c.data(), 4, cfg),
               std::invalid_argument);
  EXPECT_THROW(gemm(4, 4, 4, 1.0, nullptr, 4, Op::None, b.data(), 4, Op::None,
                    0.0, c.data(), 4, cfg),
               std::invalid_argument);
  GemmConfig row;
  row.layout = Curve::RowMajor;
  EXPECT_THROW(gemm(4, 4, 4, 1.0, a.data(), 4, Op::None, b.data(), 4, Op::None,
                    0.0, c.data(), 4, row),
               std::invalid_argument);
}

TEST(Gemm, LeadingDimensionsLargerThanExtent) {
  // Submatrix views with oversized leading dimensions.
  GemmConfig cfg;
  cfg.layout = Curve::UMorton;
  Matrix a = rla::testing::random_matrix(30, 30, 9);
  Matrix b = rla::testing::random_matrix(30, 30, 10);
  Matrix c = rla::testing::random_matrix(30, 30, 11);
  Matrix c_ref = c;
  gemm(20, 18, 22, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
       1.0, c.data(), c.ld(), cfg);
  reference_gemm(20, 18, 22, 1.0, a.data(), a.ld(), false, b.data(), b.ld(),
                 false, 1.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11);
  // Rows/cols of C outside the 20x18 target must be untouched — compare the
  // full 30x30 views.
  bool outside_clean = true;
  Matrix c2 = rla::testing::random_matrix(30, 30, 11);
  reference_gemm(20, 18, 22, 1.0, a.data(), a.ld(), false, b.data(), b.ld(),
                 false, 1.0, c2.data(), c2.ld());
  for (std::uint32_t j = 0; j < 30 && outside_clean; ++j) {
    for (std::uint32_t i = 0; i < 30; ++i) {
      if (i < 20 && j < 18) continue;
      if (c(i, j) != c2(i, j)) {
        outside_clean = false;
        break;
      }
    }
  }
  EXPECT_TRUE(outside_clean);
}

TEST(Gemm, ExternalPoolReuse) {
  WorkerPool pool(3);
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Strassen;
  cfg.pool = &pool;
  for (int round = 0; round < 3; ++round) {
    EXPECT_LT(gemm_vs_reference(64, 64, 64, 1.0, Op::None, Op::None, 0.0, cfg,
                                100 + static_cast<std::uint64_t>(round)),
              1e-10);
  }
}

TEST(Gemm, MultiplyConvenience) {
  Matrix a = rla::testing::random_matrix(40, 50, 12);
  Matrix b = rla::testing::random_matrix(50, 30, 13);
  Matrix c(40, 30);
  GemmConfig cfg;
  cfg.algorithm = Algorithm::Winograd;
  multiply(c, a, b, cfg);
  Matrix c_ref(40, 30);
  c_ref.zero();
  reference_gemm(40, 30, 50, 1.0, a.data(), a.ld(), false, b.data(), b.ld(),
                 false, 0.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-10);
  Matrix wrong(41, 30);
  EXPECT_THROW(multiply(wrong, a, b, cfg), std::invalid_argument);
}

TEST(GemmValidation, RejectsInvalidConfigs) {
  Matrix a = rla::testing::random_matrix(8, 8, 1);
  Matrix b = rla::testing::random_matrix(8, 8, 2);
  Matrix c(8, 8);
  c.zero();
  const auto run = [&](const GemmConfig& cfg) {
    gemm(8, 8, 8, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
         0.0, c.data(), c.ld(), cfg);
  };

  GemmConfig inverted;
  inverted.tiles = {32, 16};
  EXPECT_THROW(run(inverted), std::invalid_argument);

  GemmConfig zero_tile;
  zero_tile.tiles = {0, 16};
  EXPECT_THROW(run(zero_tile), std::invalid_argument);

  GemmConfig deep;
  deep.forced_depth = 31;
  EXPECT_THROW(run(deep), std::invalid_argument);
  deep.forced_depth = -2;
  EXPECT_THROW(run(deep), std::invalid_argument);

  GemmConfig too_many_threads;
  too_many_threads.threads = 100000;
  EXPECT_THROW(run(too_many_threads), std::invalid_argument);

  GemmConfig bad_probes;
  bad_probes.verify = true;
  bad_probes.verify_probes = 0;
  EXPECT_THROW(run(bad_probes), std::invalid_argument);

  GemmConfig bad_tolerance;
  bad_tolerance.verify = true;
  bad_tolerance.verify_tolerance = 0.0;
  EXPECT_THROW(run(bad_tolerance), std::invalid_argument);

  // Config validation happens before the m == 0 early-out: bad configs are
  // never silently accepted just because there is no work.
  GemmConfig still_inverted;
  still_inverted.tiles = {32, 16};
  EXPECT_THROW(gemm(0, 0, 8, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(),
                    Op::None, 0.0, c.data(), c.ld(), still_inverted),
               std::invalid_argument);
}

TEST(GemmValidation, RejectsOverflowingLeadingDimensions) {
  Matrix a = rla::testing::random_matrix(8, 8, 3);
  Matrix b = rla::testing::random_matrix(8, 8, 4);
  Matrix c(8, 8);
  c.zero();
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 8;
  EXPECT_THROW(gemm(8, 8, 8, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(),
                    Op::None, 0.0, c.data(), huge, GemmConfig{}),
               std::invalid_argument);
  EXPECT_THROW(gemm(8, 8, 8, 1.0, a.data(), huge, Op::None, b.data(), b.ld(),
                    Op::None, 0.0, c.data(), c.ld(), GemmConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rla
