// Cross-cutting edge cases: custom tile ranges, operand aliasing, numerical
// error growth of the fast algorithms, LRU stack inclusion, multi-curve
// parallel traces, and container edge behaviour.

#include <gtest/gtest.h>

#include "cachesim/cache.hpp"
#include "test_common.hpp"
#include "trace/access_logger.hpp"

namespace rla {
namespace {

using rla::testing::gemm_vs_reference;
using rla::testing::random_matrix;

TEST(TileRanges, CustomRangesStayCorrect) {
  for (const TileRange range : {TileRange{8, 16, 8}, TileRange{4, 8, 4},
                                TileRange{24, 48, 32}, TileRange{16, 64, 32}}) {
    GemmConfig cfg;
    cfg.layout = Curve::Hilbert;
    cfg.tiles = range;
    EXPECT_LT(gemm_vs_reference(120, 90, 100, 1.0, Op::None, Op::None, 1.0, cfg),
              1e-10)
        << range.t_min << ".." << range.t_max;
  }
}

TEST(TileRanges, WideAlphaRangeAvoidsSplitting) {
  // alpha = t_max/t_min = 8: even a 6:1 aspect ratio finds a common depth.
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.tiles = TileRange{4, 32, 16};
  GemmProfile profile;
  Matrix a = random_matrix(240, 40, 1);
  Matrix b = random_matrix(40, 40, 2);
  Matrix c(240, 40);
  c.zero();
  gemm(240, 40, 40, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
       0.0, c.data(), c.ld(), cfg, &profile);
  EXPECT_EQ(profile.splits, 0);
  Matrix c_ref(240, 40);
  c_ref.zero();
  reference_gemm(240, 40, 40, 1.0, a.data(), a.ld(), false, b.data(), b.ld(),
                 false, 0.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11);
}

TEST(Aliasing, SquaringAMatrixSharesOperands) {
  // C = A·A with the same pointer for both operands is legal (operands are
  // read-only); check for every algorithm.
  const std::uint32_t n = 64;
  Matrix a = random_matrix(n, n, 3);
  for (const Algorithm alg :
       {Algorithm::Standard, Algorithm::Strassen, Algorithm::Winograd}) {
    GemmConfig cfg;
    cfg.layout = Curve::GrayMorton;
    cfg.algorithm = alg;
    Matrix c(n, n);
    c.zero();
    gemm(n, n, n, 1.0, a.data(), a.ld(), Op::None, a.data(), a.ld(), Op::None,
         0.0, c.data(), c.ld(), cfg);
    Matrix c_ref(n, n);
    c_ref.zero();
    reference_gemm(n, n, n, 1.0, a.data(), a.ld(), false, a.data(), a.ld(),
                   false, 0.0, c_ref.data(), c_ref.ld());
    ASSERT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11)
        << algorithm_name(alg);
  }
}

TEST(Aliasing, AAndATransposed) {
  // C = A·Aᵀ via the gemm interface (Gram matrix).
  const std::uint32_t n = 48;
  Matrix a = random_matrix(n, n, 4);
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  Matrix c(n, n);
  c.zero();
  gemm(n, n, n, 1.0, a.data(), a.ld(), Op::None, a.data(), a.ld(), Op::Transpose,
       0.0, c.data(), c.ld(), cfg);
  // Result must be symmetric to rounding.
  double asym = 0.0;
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = 0; i < n; ++i) {
      asym = std::max(asym, std::abs(c(i, j) - c(j, i)));
    }
  }
  EXPECT_LT(asym, 1e-12);
}

TEST(Numerics, FastAlgorithmErrorGrowthIsModest) {
  // Strassen/Winograd lose a few bits per recursion level; confirm the
  // error stays within a small multiple of the standard algorithm's.
  const std::uint32_t n = 256;
  Matrix a = random_matrix(n, n, 5);
  Matrix b = random_matrix(n, n, 6);
  Matrix c_ref(n, n);
  c_ref.zero();
  reference_gemm(n, n, n, 1.0, a.data(), a.ld(), false, b.data(), b.ld(), false,
                 0.0, c_ref.data(), c_ref.ld());
  auto error_of = [&](Algorithm alg) {
    GemmConfig cfg;
    cfg.layout = Curve::ZMorton;
    cfg.algorithm = alg;
    Matrix c(n, n);
    multiply(c, a, b, cfg);
    return max_abs_diff(c.view(), c_ref.view());
  };
  const double std_err = error_of(Algorithm::Standard);
  const double str_err = error_of(Algorithm::Strassen);
  const double win_err = error_of(Algorithm::Winograd);
  EXPECT_LT(std_err, 1e-12);
  EXPECT_LT(str_err, 1e-10);  // a few hundred ulps of slack
  EXPECT_LT(win_err, 1e-10);
  EXPECT_GE(str_err, std_err);  // fast algorithms genuinely lose accuracy
}

TEST(CacheProperty, LruStackInclusion) {
  // Classic inclusion property: for fully-associative LRU, a larger cache's
  // hit set contains the smaller's — replay one trace through three sizes
  // and check hits are monotone.
  const auto trace = trace::standard_canonical_trace(24, 8);
  std::uint64_t previous_hits = 0;
  for (const std::uint64_t lines : {8ull, 16ull, 32ull, 64ull}) {
    sim::Cache cache({lines * 64, 64, static_cast<std::uint32_t>(lines), false});
    for (const auto& ref : trace) cache.access(ref.addr, ref.write);
    EXPECT_GE(cache.stats().hits, previous_hits) << lines;
    previous_hits = cache.stats().hits;
  }
}

TEST(CacheProperty, MissesNeverBelowCompulsory) {
  const auto trace = trace::standard_canonical_trace(16, 8);
  std::set<std::uint64_t> lines_touched;
  for (const auto& ref : trace) lines_touched.insert(ref.addr / 64);
  sim::Cache huge({1u << 20, 64, 16, false});
  for (const auto& ref : trace) huge.access(ref.addr, ref.write);
  EXPECT_EQ(huge.stats().misses, lines_touched.size());
}

TEST(Trace, QuadrantParallelAllRecursiveCurves) {
  for (Curve c : kRecursiveCurves) {
    const auto refs = trace::quadrant_parallel_trace(32, 8, c);
    ASSERT_FALSE(refs.empty()) << curve_name(c);
    // Every element of C written exactly by one core.
    std::map<std::uint64_t, std::uint32_t> writer;
    for (const auto& r : refs) {
      if (!r.write) continue;
      auto [it, inserted] = writer.emplace(r.addr, r.core);
      ASSERT_EQ(it->second, r.core) << curve_name(c);
    }
    EXPECT_EQ(writer.size(), 32u * 32u) << curve_name(c);
  }
}

TEST(Trace, OddSizeQuadrantParallelCanonical) {
  // Ceil-half quadrants: odd n exercises unequal quadrant extents.
  const auto refs = trace::quadrant_parallel_trace(30, 8, Curve::ColMajor);
  std::map<std::uint64_t, int> writes;
  for (const auto& r : refs) {
    if (r.write) ++writes[r.addr];
  }
  EXPECT_EQ(writes.size(), 30u * 30u);
}

TEST(Containers, AlignedBufferSelfAssignment) {
  AlignedBuffer<int> buf(8);
  for (std::size_t i = 0; i < 8; ++i) buf[i] = static_cast<int>(i * i);
  buf = *&buf;  // self copy-assignment must be a no-op
  EXPECT_EQ(buf[7], 49);
}

TEST(WorkSpanEdge, DepthZeroAcrossAlgorithms) {
  for (const Algorithm alg :
       {Algorithm::Standard, Algorithm::Strassen, Algorithm::Winograd}) {
    WorkSpanParams p;
    p.algorithm = alg;
    p.depth = 0;
    p.tile_m = p.tile_k = p.tile_n = 8;
    const WorkSpan ws = analyze_work_span(p);
    EXPECT_DOUBLE_EQ(ws.work, 2.0 * 8 * 8 * 8) << algorithm_name(alg);
    EXPECT_DOUBLE_EQ(ws.parallelism(), 1.0);
  }
}

TEST(GemmEdge, OneByOneEverything) {
  for (Curve layout : {Curve::ColMajor, Curve::ZMorton, Curve::Hilbert}) {
    for (const Algorithm alg :
         {Algorithm::Standard, Algorithm::Strassen, Algorithm::Winograd}) {
      GemmConfig cfg;
      cfg.layout = layout;
      cfg.algorithm = alg;
      double a = 3.0, b = -4.0, c = 10.0;
      gemm(1, 1, 1, 2.0, &a, 1, Op::None, &b, 1, Op::None, 0.5, &c, 1, cfg);
      ASSERT_DOUBLE_EQ(c, 2.0 * 3.0 * -4.0 + 0.5 * 10.0)
          << curve_name(layout) << "/" << algorithm_name(alg);
    }
  }
}

}  // namespace
}  // namespace rla
