// Tests of the utility substrate: aligned buffers, RNG, stats, CLI, tables.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "util/aligned_buffer.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rla {
namespace {

TEST(AlignedBuffer, AlignmentAndSize) {
  AlignedBuffer<double> buf(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes, 0u);
  AlignedBuffer<double> page(10, kPageBytes);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(page.data()) % kPageBytes, 0u);
}

TEST(AlignedBuffer, CopyAndMoveSemantics) {
  AlignedBuffer<int> a(10);
  for (std::size_t i = 0; i < 10; ++i) a[i] = static_cast<int>(i);
  AlignedBuffer<int> b = a;  // copy
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(b[7], 7);
  AlignedBuffer<int> c = std::move(a);  // move
  EXPECT_EQ(c[7], 7);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): testing the contract
  b = c;                   // copy-assign
  EXPECT_EQ(b[3], 3);
  AlignedBuffer<int> d;
  d = std::move(c);
  EXPECT_EQ(d[3], 3);
}

TEST(AlignedBuffer, ZeroAndEmpty) {
  AlignedBuffer<double> buf(16);
  for (auto& v : buf) v = 1.0;
  buf.zero();
  for (const auto& v : buf) EXPECT_EQ(v, 0.0);
  AlignedBuffer<double> empty;
  EXPECT_TRUE(empty.empty());
  empty.zero();  // no-op, no crash
}

TEST(Rng, DeterministicAndDistinctSeeds) {
  Xoshiro256 a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  Xoshiro256 a2(1);
  for (int i = 0; i < 100; ++i) differs |= (a2.next_u64() != c.next_u64());
  EXPECT_TRUE(differs);
}

TEST(Rng, DoubleRangeAndBound) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const double r = rng.next_double(-2.0, 3.0);
    EXPECT_GE(r, -2.0);
    EXPECT_LT(r, 3.0);
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Stats, Summarize) {
  const Summary s = summarize({3.0, 1.0, 2.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
  const Summary odd = summarize({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(odd.median, 3.0);
  const Summary empty = summarize({});
  EXPECT_EQ(empty.count, 0u);
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean({2.0, 0.0}), 0.0);
}

TEST(Cli, FlagForms) {
  const char* argv[] = {"prog",        "--n=100",     "--algo=strassen",
                        "--verbose",   "positional1", "--rate=2.5",
                        "--flag=true"};
  CliArgs args(7, argv);
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_EQ(args.get("algo"), "strassen");
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_TRUE(args.get_bool("flag"));
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 2.5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional1");
  EXPECT_EQ(args.get_int("missing", -7), -7);
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, MalformedNumbersFallBack) {
  const char* argv[] = {"prog", "--n=abc", "--r=1.2.3"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("n", 5), 5);
  EXPECT_DOUBLE_EQ(args.get_double("r", 9.0), 9.0);
}

TEST(Env, IntParsing) {
  ::setenv("RLA_TEST_ENV_X", "42", 1);
  EXPECT_EQ(env_int("RLA_TEST_ENV_X", 0), 42);
  ::setenv("RLA_TEST_ENV_X", "junk", 1);
  EXPECT_EQ(env_int("RLA_TEST_ENV_X", 7), 7);
  ::unsetenv("RLA_TEST_ENV_X");
  EXPECT_EQ(env_int("RLA_TEST_ENV_X", 3), 3);
  EXPECT_EQ(env_string("RLA_TEST_ENV_X", "d"), "d");
}

TEST(Env, OutOfRangeIntFallsBack) {
  // strtoll saturates to LLONG_MAX/MIN with errno == ERANGE; env_int must
  // report the fallback instead of the silently clamped value.
  ::setenv("RLA_TEST_ENV_X", "99999999999999999999", 1);
  EXPECT_EQ(env_int("RLA_TEST_ENV_X", -1), -1);
  ::setenv("RLA_TEST_ENV_X", "-99999999999999999999", 1);
  EXPECT_EQ(env_int("RLA_TEST_ENV_X", 11), 11);
  ::unsetenv("RLA_TEST_ENV_X");
}

TEST(Env, PickSize) {
  ::unsetenv("RLA_PAPER_SCALE");
  EXPECT_EQ(pick_size(1024, 256), 256);
  ::setenv("RLA_PAPER_SCALE", "1", 1);
  EXPECT_EQ(pick_size(1024, 256), 1024);
  ::unsetenv("RLA_PAPER_SCALE");
}

TEST(Table, AlignmentAndFormat) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::num(1.5, 2)});
  t.add_row({"a-very-long-name", TextTable::num(12345ll)});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name "), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  EXPECT_NE(text.find("12345"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  // Header separator present.
  EXPECT_NE(text.find("|-"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace rla
