// Positive control: this file exercises every rla_lint checker's trigger
// surface *correctly* and must produce zero findings — a checker that
// starts flagging compliant idioms fails the rla_lint_clean ctest entry.
// Never compiled; skipped by the default sweep.
#include <cstring>

namespace rla_fixture {

// A pure hot-path function: arithmetic, memcpy, calls to other pure code.
// rla-hotpath
double hot_dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// An exempted setup call inside a hot function, with justification.
// rla-hotpath
double hot_with_setup(const double* a, std::size_t n) {
  double* scratch = make_scratch(n);  // hotpath-exempt: one-time arena grab, amortised
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] + scratch[i];
  return acc;
}

// Canonical fault-site usage: a listed Site:: symbol and a canonical spec.
int arm_faults() {
  auto s = static_cast<int>(rla::fault::Site::AllocTiled);
  const char* spec = "alloc.tiled:nth=2;task.throw:p=0.5";
  return s + (spec != nullptr);
}

// On-schema metric literals, a declared family, and a schema span.
void emit(Registry& reg, int worker) {
  reg.counter("service.submitted").add(1);
  // metric-family: sched.w*.*
  reg.counter(worker_lane(worker, "steals")).add(1);
  obs::PhaseScope phase("compute");
}

// Env access through the sanctioned wrapper, documented variable.
int knobs() { return rla::env_int("RLA_PERF", 0); }

}  // namespace rla_fixture
