// Seeded C4 violation fixture: a raw getenv outside src/util/env.cpp and an
// RLA_* variable read through the sanctioned wrapper but absent from
// README.md's environment table.  Never compiled; skipped by the default
// sweep.
#include <cstdlib>

namespace rla_fixture {

int read_knobs() {
  const char* raw = std::getenv("RLA_PERF");  // raw getenv: must be flagged
  int undocumented = rla::env_int("RLA_SECRET_UNDOCUMENTED_KNOB", 0);
  return (raw != nullptr) + undocumented;
}

}  // namespace rla_fixture
