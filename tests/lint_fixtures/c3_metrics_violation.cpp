// Seeded C3 violation fixture: an off-schema metric literal, a computed
// metric name with no metric-family declaration, and an off-schema span.
// Never compiled; skipped by the default sweep.
namespace rla_fixture {

void emit(Registry& reg, const char* label) {
  reg.counter("service.submited").add(1);  // typo: not a schema row
  reg.gauge(std::string("custom.") + label).set(1);  // no metric-family
  obs::PhaseScope phase("comptue");  // typo: not a schema span
}

}  // namespace rla_fixture
