// Seeded C1 violation fixture: a marked hot-path function that reaches an
// allocation through a helper, plus a direct lock.  rla_lint's hotpath
// checker must flag both; the ctest entry pattern-matches the diagnostics so
// a checker crash cannot impersonate a detection.  This file is never
// compiled and the default lint sweep skips tests/lint_fixtures/.
#include <mutex>
#include <vector>

namespace rla_fixture {

static double* grow_scratch(std::size_t n) {
  std::vector<double> scratch(n);  // transitive allocation: must be flagged
  return scratch.data();
}

// rla-hotpath
double hot_accumulate(const double* a, std::size_t n) {
  std::mutex m;
  std::lock_guard<std::mutex> hold(m);  // direct lock: must be flagged
  double* s = grow_scratch(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] + s[i];
  return acc;
}

}  // namespace rla_fixture
