// Seeded C2 violation fixture: an off-registry Site:: symbol and a fault
// spec literal naming a site that RLA_FAULT_SITE_LIST does not define.
// Never compiled; skipped by the default sweep.
namespace rla_fixture {

int touch_sites() {
  auto s = static_cast<int>(rla::fault::Site::TotallyBogusSite);
  const char* spec = "alloc.imaginary:nth=3";
  return s + (spec != nullptr);
}

}  // namespace rla_fixture
