// Tests of the SP-bags determinacy-race detector (src/analysis/).
//
// The detector's bookkeeping (bags, shadow memory, provenance) is driven
// through its public API in every build configuration. The end-to-end
// certification tests — which need the RLA_RACE_READ/WRITE annotations in
// the library's hot paths to be live — are skipped unless the build was
// configured with -DRLA_RACE_DETECT=ON (they run in the race-detect CI job).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/race_detect.hpp"
#include "analysis/sp_bags.hpp"
#include "core/rla.hpp"
#include "parallel/worker_pool.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

using analysis::DetectorOptions;
using analysis::RaceDetector;
using analysis::ScopedDetection;
using analysis::Site;

Site site(const char* label) { return Site{"test_analysis.cpp", 0, label}; }

// ---------------------------------------------------------------------------
// SP-bags structure
// ---------------------------------------------------------------------------

TEST(SpBags, NewSetIsSerialUntilTagged) {
  analysis::SpBags bags;
  const std::uint32_t a = bags.make_set();
  EXPECT_FALSE(bags.is_p_bag(a));
  bags.set_p(a, true);
  EXPECT_TRUE(bags.is_p_bag(a));
}

TEST(SpBags, MergeAdoptsRequestedTag) {
  analysis::SpBags bags;
  const std::uint32_t a = bags.make_set();
  const std::uint32_t b = bags.make_set();
  bags.set_p(b, true);
  const std::uint32_t root = bags.merge(a, b, false);  // sync: result is S
  EXPECT_FALSE(bags.is_p_bag(root));
  EXPECT_EQ(bags.find(a), bags.find(b));

  const std::uint32_t c = bags.make_set();
  const std::uint32_t root2 = bags.merge(root, c, true);  // task end: P
  EXPECT_TRUE(bags.is_p_bag(root2));
}

// ---------------------------------------------------------------------------
// Hand-replayed DAGs (work in every build: record() is always compiled)
// ---------------------------------------------------------------------------

TEST(RaceDetect, SiblingWritesRace) {
  RaceDetector det;
  double x = 0.0;
  int group;  // any unique address works as a group key
  static const Site w = site("sibling_write");

  det.task_begin(&group, 0);
  det.record(&w, &x, sizeof x, true);
  det.task_end(&group);
  det.task_begin(&group, 1);
  det.record(&w, &x, sizeof x, true);
  det.task_end(&group);

  ASSERT_EQ(det.race_count(), 1u);
  const analysis::RaceReport& r = det.races().at(0);
  EXPECT_TRUE(r.prior.write);
  EXPECT_TRUE(r.current.write);
  EXPECT_EQ(r.prior.task_path, "R.0");
  EXPECT_EQ(r.current.task_path, "R.1");
  EXPECT_EQ(r.prior.site, &w);
  EXPECT_NE(r.to_string().find("parallel"), std::string::npos);
}

TEST(RaceDetect, ReadThenParallelWriteRaces) {
  RaceDetector det;
  double x = 0.0;
  int group;
  static const Site rd = site("reader");
  static const Site wr = site("writer");

  det.task_begin(&group, 0);
  det.record(&rd, &x, sizeof x, false);
  det.task_end(&group);
  det.task_begin(&group, 1);
  det.record(&wr, &x, sizeof x, true);
  det.task_end(&group);

  ASSERT_EQ(det.race_count(), 1u);
  EXPECT_FALSE(det.races().at(0).prior.write);
  EXPECT_TRUE(det.races().at(0).current.write);
}

TEST(RaceDetect, WaitSerializesSiblings) {
  RaceDetector det;
  double x = 0.0;
  int g1, g2;
  static const Site w = site("serialized_write");

  det.task_begin(&g1, 0);
  det.record(&w, &x, sizeof x, true);
  det.task_end(&g1);
  det.group_sync(&g1);  // wait(): child drains into the root's S-bag
  det.task_begin(&g2, 0);
  det.record(&w, &x, sizeof x, true);
  det.task_end(&g2);

  EXPECT_EQ(det.race_count(), 0u);
}

TEST(RaceDetect, SpawnerContinuationRacesWithChild) {
  RaceDetector det;
  double x = 0.0;
  int group;
  static const Site child = site("child_write");
  static const Site cont = site("continuation_write");

  det.task_begin(&group, 0);
  det.record(&child, &x, sizeof x, true);
  det.task_end(&group);
  // The spawner touches x before wait(): parallel with the child.
  det.record(&cont, &x, sizeof x, true);

  ASSERT_EQ(det.race_count(), 1u);
  EXPECT_EQ(det.races().at(0).prior.task_path, "R.0");
  EXPECT_EQ(det.races().at(0).current.task_path, "R");
}

TEST(RaceDetect, ParallelReaderStaysVisibleBehindSerialReader) {
  // Subtle SP-bags rule: a serial read must not displace a logically
  // parallel reader from the shadow cell, or a later write would miss the
  // race against that parallel reader.
  RaceDetector det;
  double x = 0.0;
  int group;
  static const Site pr = site("parallel_reader");
  static const Site sr = site("serial_reader");
  static const Site w = site("later_writer");

  det.task_begin(&group, 0);
  det.record(&pr, &x, sizeof x, false);
  det.task_end(&group);
  det.record(&sr, &x, sizeof x, false);  // spawner reads too: no race yet
  EXPECT_EQ(det.race_count(), 0u);
  det.task_begin(&group, 1);
  det.record(&w, &x, sizeof x, true);  // must race with the *parallel* read
  det.task_end(&group);

  ASSERT_EQ(det.race_count(), 1u);
  EXPECT_EQ(det.races().at(0).prior.site, &pr);
}

TEST(RaceDetect, NestedSpawnPathsAndTaskCount) {
  RaceDetector det;
  int outer, inner;
  det.task_begin(&outer, 3);
  det.task_begin(&inner, 1);
  EXPECT_EQ(det.task_path(det.current_task()), "R.3.1");
  det.task_end(&inner);
  det.task_end(&outer);
  EXPECT_EQ(det.task_count(), 3u);  // root + two spawned
  EXPECT_EQ(det.task_path(0), "R");
}

TEST(RaceDetect, RacesDeduplicatedBySitePair) {
  RaceDetector det;
  std::vector<double> buf(64, 0.0);
  int group;
  static const Site w = site("bulk_write");

  det.task_begin(&group, 0);
  det.record(&w, buf.data(), buf.size() * sizeof(double), true);
  det.task_end(&group);
  det.task_begin(&group, 1);
  det.record(&w, buf.data(), buf.size() * sizeof(double), true);
  det.task_end(&group);

  // 64 conflicting cells, but one (site, site, kind, kind) signature.
  EXPECT_EQ(det.race_count(), 1u);
  EXPECT_EQ(det.races().size(), 1u);
}

TEST(RaceDetect, ReportCapCountsWithoutStoring) {
  DetectorOptions opts;
  opts.max_reports = 2;
  RaceDetector det(opts);
  double x = 0, y = 0, z = 0;
  int group;
  static const Site s1 = site("race_one");
  static const Site s2 = site("race_two");
  static const Site s3 = site("race_three");

  det.task_begin(&group, 0);
  det.record(&s1, &x, sizeof x, true);
  det.record(&s2, &y, sizeof y, true);
  det.record(&s3, &z, sizeof z, true);
  det.task_end(&group);
  det.task_begin(&group, 1);
  det.record(&s1, &x, sizeof x, true);
  det.record(&s2, &y, sizeof y, true);
  det.record(&s3, &z, sizeof z, true);
  det.task_end(&group);

  EXPECT_EQ(det.race_count(), 3u);
  EXPECT_EQ(det.races().size(), 2u);
}

TEST(RaceDetect, CoarseGranularityMayConflateNeighbors) {
  // Two parallel writes to *different* doubles: exact granularity sees no
  // race; a 64-byte cell merges them (documented false-positive direction —
  // coarsening never loses a real race, it can only add spurious ones).
  double pair[2] = {0.0, 0.0};
  int group;
  static const Site a = site("first_elem");
  static const Site b = site("second_elem");

  for (const std::size_t gran : {sizeof(double), std::size_t{64}}) {
    DetectorOptions opts;
    opts.granularity = gran;
    RaceDetector det(opts);
    det.task_begin(&group, 0);
    det.record(&a, &pair[0], sizeof(double), true);
    det.task_end(&group);
    det.task_begin(&group, 1);
    det.record(&b, &pair[1], sizeof(double), true);
    det.task_end(&group);
    EXPECT_EQ(det.race_count(), gran == sizeof(double) ? 0u : 1u)
        << "granularity " << gran;
  }
}

TEST(RaceDetect, StridedRecordSkipsTheGaps) {
  // Two parallel strided writes whose runs interleave: 2 columns of 2
  // doubles with ld = 4 doubles, offset by 2 rows. No byte overlaps, so no
  // race at exact granularity.
  std::vector<double> block(16, 0.0);
  int group;
  static const Site top = site("top_half");
  static const Site bot = site("bottom_half");

  RaceDetector det;
  det.task_begin(&group, 0);
  det.record_strided(&top, block.data(), 2 * sizeof(double),
                     4 * sizeof(double), 2, true);
  det.task_end(&group);
  det.task_begin(&group, 1);
  det.record_strided(&bot, block.data() + 2, 2 * sizeof(double),
                     4 * sizeof(double), 2, true);
  det.task_end(&group);
  EXPECT_EQ(det.race_count(), 0u);

  // The same two runs made contiguous do overlap.
  RaceDetector det2;
  det2.task_begin(&group, 0);
  det2.record(&top, block.data(), 4 * sizeof(double), true);
  det2.task_end(&group);
  det2.task_begin(&group, 1);
  det2.record(&bot, block.data() + 2, 4 * sizeof(double), true);
  det2.task_end(&group);
  EXPECT_EQ(det2.race_count(), 1u);
}

TEST(RaceDetect, ClearRangeForgetsRecycledBuffers) {
  RaceDetector det;
  double x = 0.0;
  int group;
  static const Site w = site("recycled_write");

  det.task_begin(&group, 0);
  det.record(&w, &x, sizeof x, true);
  det.task_end(&group);
  det.clear_range(&x, sizeof x);  // "free" + "malloc" at the same address
  det.task_begin(&group, 1);
  det.record(&w, &x, sizeof x, true);
  det.task_end(&group);

  EXPECT_EQ(det.race_count(), 0u);
}

TEST(RaceDetect, GroupAddressReuseIsIndependent) {
  // A destroyed group's address may be recycled by a later group; its P-bag
  // must not leak into the new group's bookkeeping.
  RaceDetector det;
  double x = 0.0;
  int group;
  static const Site w = site("reuse_write");

  det.task_begin(&group, 0);
  det.record(&w, &x, sizeof x, true);
  det.task_end(&group);
  det.group_sync(&group);
  det.group_destroyed(&group);

  det.task_begin(&group, 0);  // same address, logically a new group
  det.record(&w, &x, sizeof x, true);
  det.task_end(&group);
  EXPECT_EQ(det.race_count(), 0u);
}

TEST(RaceDetect, ParallelScheduleVoidsCertification) {
  RaceDetector det;
  int group;
  static const Site w = site("any_write");
  double x = 0.0;
  det.task_begin(&group, 0);
  det.record(&w, &x, sizeof x, true);
  det.task_end(&group);
  EXPECT_FALSE(det.schedule_violation());
  det.note_parallel_schedule();
  EXPECT_TRUE(det.schedule_violation());
  EXPECT_FALSE(det.certified());
}

// ---------------------------------------------------------------------------
// Driven by the real TaskGroup hooks (serial pool = depth-first schedule)
// ---------------------------------------------------------------------------

TEST(RaceDetectHooks, TaskGroupSpawnsAreModeledOnSerialPool) {
  RaceDetector det;
  ScopedDetection on(det);
  WorkerPool pool(0);
  double x = 0.0;
  static const Site w = site("spawned_write");
  {
    TaskGroup group(pool);
    group.spawn([&] { det.record(&w, &x, sizeof x, true); });
    group.spawn([&] { det.record(&w, &x, sizeof x, true); });
    group.wait();
  }
  EXPECT_EQ(det.task_count(), 3u);
  ASSERT_EQ(det.race_count(), 1u);
  EXPECT_EQ(det.races().at(0).prior.task_path, "R.0");
  EXPECT_EQ(det.races().at(0).current.task_path, "R.1");
}

TEST(RaceDetectHooks, WaitOnTheRealGroupSerializes) {
  RaceDetector det;
  ScopedDetection on(det);
  WorkerPool pool(0);
  double x = 0.0;
  static const Site w = site("phased_write");
  TaskGroup group(pool);
  group.spawn([&] { det.record(&w, &x, sizeof x, true); });
  group.wait();
  group.spawn([&] { det.record(&w, &x, sizeof x, true); });
  group.wait();
  EXPECT_EQ(det.race_count(), 0u);
}

TEST(RaceDetectHooks, NestedGroupsFollowTheSpawnTree) {
  RaceDetector det;
  ScopedDetection on(det);
  WorkerPool pool(0);
  double x = 0.0;
  static const Site inner_w = site("inner_write");
  static const Site outer_w = site("outer_write");
  {
    TaskGroup outer(pool);
    outer.spawn([&] {
      TaskGroup inner(pool);
      inner.spawn([&] { det.record(&inner_w, &x, sizeof x, true); });
      inner.wait();  // inner child serialized with the rest of this task
    });
    outer.spawn([&] { det.record(&outer_w, &x, sizeof x, true); });
    outer.wait();
  }
  // The two writes are in parallel *outer* siblings: exactly one race, and
  // the prior side is attributed to the nested task R.0.0.
  ASSERT_EQ(det.race_count(), 1u);
  EXPECT_EQ(det.races().at(0).prior.task_path, "R.0.0");
  EXPECT_EQ(det.races().at(0).current.task_path, "R.1");
}

TEST(RaceDetectHooks, ParallelPoolSpawnVoidsCertification) {
  WorkerPool pool(2);
  if (pool.serial()) GTEST_SKIP() << "no worker threads available";
  RaceDetector det;
  ScopedDetection on(det);
  {
    TaskGroup group(pool);
    group.spawn([] {});
    group.wait();
  }
  EXPECT_TRUE(det.schedule_violation());
  EXPECT_FALSE(det.certified());
}

TEST(RaceDetectHooks, ParallelForModelsTasksUnderDetection) {
  // On a serial pool parallel_for normally collapses to one body call; under
  // detection it must still chunk and model tasks, or certification would be
  // vacuous for loop-parallel code.
  RaceDetector det;
  ScopedDetection on(det);
  WorkerPool pool(0);
  pool.parallel_for(0, 256, 64, [](std::uint64_t, std::uint64_t) {});
  EXPECT_GE(det.task_count(), 1u + 4u);
  EXPECT_FALSE(det.schedule_violation());
}

// ---------------------------------------------------------------------------
// End-to-end certification (requires -DRLA_RACE_DETECT=ON)
// ---------------------------------------------------------------------------

/// Run a small gemm under detection and return the profile.
GemmProfile detect_profile(GemmConfig cfg, std::uint32_t m, std::uint32_t n,
                           std::uint32_t k, Op op_a = Op::None,
                           Op op_b = Op::None) {
  cfg.detect_races = true;
  GemmProfile profile;
  const std::uint32_t a_rows = op_a == Op::None ? m : k;
  const std::uint32_t a_cols = op_a == Op::None ? k : m;
  const std::uint32_t b_rows = op_b == Op::None ? k : n;
  const std::uint32_t b_cols = op_b == Op::None ? n : k;
  Matrix a = testing::random_matrix(a_rows, a_cols, 7);
  Matrix b = testing::random_matrix(b_rows, b_cols, 8);
  Matrix c = testing::random_matrix(m, n, 9);
  gemm(m, n, k, 1.25, a.data(), a.ld(), op_a, b.data(), b.ld(), op_b, 0.5,
       c.data(), c.ld(), cfg, &profile);
  return profile;
}

TEST(RaceCertify, UninstrumentedBuildsNeverCertify) {
  if (analysis::instrumented()) GTEST_SKIP() << "build is instrumented";
  GemmConfig cfg;
  cfg.detect_races = true;
  // The run must still compute the right product (the detector only rides
  // along); certification simply cannot be claimed without annotations.
  const double err = testing::gemm_vs_reference(64, 64, 64, 1.0, Op::None,
                                                Op::None, 0.0, cfg);
  EXPECT_LE(err, testing::gemm_tolerance(64, 64, 64));
  const GemmProfile profile = detect_profile(cfg, 64, 64, 64);
  EXPECT_FALSE(profile.race_certified);
  EXPECT_EQ(profile.races, 0);
}

TEST(RaceCertify, AllAlgorithmsAndLayoutsAreDeterminate) {
  if (!analysis::instrumented()) {
    GTEST_SKIP() << "configure with -DRLA_RACE_DETECT=ON";
  }
  for (const Algorithm alg :
       {Algorithm::Standard, Algorithm::Strassen, Algorithm::Winograd}) {
    for (const Curve curve : kAllCurves) {
      if (curve == Curve::RowMajor) continue;  // not a gemm layout
      SCOPED_TRACE(std::string(algorithm_name(alg)) + " / curve " +
                   std::to_string(static_cast<int>(curve)));
      GemmConfig cfg;
      cfg.algorithm = alg;
      cfg.layout = curve;
      const GemmProfile profile = detect_profile(cfg, 96, 96, 96);
      for (const std::string& report : profile.race_reports) {
        ADD_FAILURE() << report;
      }
      EXPECT_EQ(profile.races, 0);
      EXPECT_TRUE(profile.race_certified);
      EXPECT_GT(profile.race_cells, 0u);
    }
  }
}

TEST(RaceCertify, TransposedAndPaddedShapesAreDeterminate) {
  if (!analysis::instrumented()) {
    GTEST_SKIP() << "configure with -DRLA_RACE_DETECT=ON";
  }
  GemmConfig cfg;
  cfg.algorithm = Algorithm::Strassen;
  cfg.layout = Curve::Hilbert;
  // Non-power-of-two (padded) shape with both operands transposed.
  GemmProfile profile = detect_profile(cfg, 70, 54, 38, Op::Transpose,
                                       Op::Transpose);
  EXPECT_TRUE(profile.race_certified);
  EXPECT_EQ(profile.races, 0);

  cfg.algorithm = Algorithm::Standard;
  cfg.layout = Curve::GrayMorton;
  cfg.skip_zero_tiles = true;  // exercise the zero-tree scan under detection
  profile = detect_profile(cfg, 80, 40, 100);
  EXPECT_TRUE(profile.race_certified);
  EXPECT_EQ(profile.races, 0);
}

TEST(RaceCertify, ThreadRequestIsOverriddenAndRecorded) {
  if (!analysis::instrumented()) {
    GTEST_SKIP() << "configure with -DRLA_RACE_DETECT=ON";
  }
  GemmConfig cfg;
  cfg.threads = 4;  // must be forced onto the serial depth-first schedule
  const GemmProfile profile = detect_profile(cfg, 64, 64, 64);
  EXPECT_TRUE(profile.race_certified);
  bool recorded = false;
  for (const std::string& entry : profile.degradation_trail) {
    if (entry.find("race-detect") != std::string::npos) recorded = true;
  }
  EXPECT_TRUE(recorded) << "serial-schedule override missing from trail";
}

TEST(RaceCertify, SeededRaceIsDetectedWithProvenance) {
  if (!analysis::instrumented()) {
    GTEST_SKIP() << "configure with -DRLA_RACE_DETECT=ON";
  }
  // Seed a genuine determinacy race through the library's own annotations:
  // two sibling tasks both zero the same matrix (Matrix::zero is annotated
  // via AlignedBuffer::zero).
  RaceDetector det;
  ScopedDetection on(det);
  WorkerPool pool(0);
  Matrix m(16, 16);
  {
    TaskGroup group(pool);
    group.spawn([&] { m.zero(); });
    group.spawn([&] { m.zero(); });
    group.wait();
  }
  ASSERT_EQ(det.race_count(), 1u);
  const analysis::RaceReport& r = det.races().at(0);
  EXPECT_TRUE(r.prior.write);
  EXPECT_TRUE(r.current.write);
  EXPECT_EQ(r.prior.task_path, "R.0");
  EXPECT_EQ(r.current.task_path, "R.1");
  ASSERT_NE(r.prior.site, nullptr);
  EXPECT_NE(std::string(r.prior.site->file).find("aligned_buffer.hpp"),
            std::string::npos);
  EXPECT_FALSE(det.certified());
}

TEST(RaceCertify, SeededMacroRaceReportsThisFile) {
  if (!analysis::instrumented()) {
    GTEST_SKIP() << "configure with -DRLA_RACE_DETECT=ON";
  }
  RaceDetector det;
  ScopedDetection on(det);
  WorkerPool pool(0);
  [[maybe_unused]] double shared[8] = {};
  {
    TaskGroup group(pool);
    group.spawn([&] { RLA_RACE_READ(shared, sizeof shared); });
    group.spawn([&] { RLA_RACE_WRITE(shared, sizeof shared); });
    group.wait();
  }
  ASSERT_EQ(det.race_count(), 1u);
  const analysis::RaceReport& r = det.races().at(0);
  EXPECT_FALSE(r.prior.write);
  EXPECT_TRUE(r.current.write);
  ASSERT_NE(r.current.site, nullptr);
  EXPECT_NE(std::string(r.current.site->file).find("test_analysis.cpp"),
            std::string::npos);
}

}  // namespace
}  // namespace rla
