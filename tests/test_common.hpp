#pragma once

// Shared helpers for the rla test suite.

#include <gtest/gtest.h>

#include <string>

#include "core/rla.hpp"

namespace rla::testing {

/// Random m×k matrix with a deterministic seed.
inline Matrix random_matrix(std::uint32_t rows, std::uint32_t cols,
                            std::uint64_t seed) {
  Matrix m(rows, cols);
  m.fill_random(seed);
  return m;
}

/// Tolerance for comparing a recursive-algorithm product against the
/// reference: Strassen-type recurrences lose a few bits per level.
inline double gemm_tolerance(std::uint32_t m, std::uint32_t n, std::uint32_t k) {
  (void)m;
  (void)n;
  return 1e-9 * static_cast<double>(k == 0 ? 1 : k);
}

/// Run cfg's gemm and the reference on identical random inputs; return the
/// max elementwise deviation.
inline double gemm_vs_reference(std::uint32_t m, std::uint32_t n, std::uint32_t k,
                                double alpha, Op op_a, Op op_b, double beta,
                                const GemmConfig& cfg, std::uint64_t seed = 42) {
  const std::uint32_t a_rows = op_a == Op::None ? m : k;
  const std::uint32_t a_cols = op_a == Op::None ? k : m;
  const std::uint32_t b_rows = op_b == Op::None ? k : n;
  const std::uint32_t b_cols = op_b == Op::None ? n : k;
  Matrix a = random_matrix(a_rows, a_cols, seed);
  Matrix b = random_matrix(b_rows, b_cols, seed + 1);
  Matrix c = random_matrix(m, n, seed + 2);
  Matrix c_ref = c;

  gemm(m, n, k, alpha, a.data(), a.ld(), op_a, b.data(), b.ld(), op_b, beta,
       c.data(), c.ld(), cfg);
  reference_gemm(m, n, k, alpha, a.data(), a.ld(), op_a == Op::Transpose, b.data(),
                 b.ld(), op_b == Op::Transpose, beta, c_ref.data(), c_ref.ld());
  return max_abs_diff(c.view(), c_ref.view());
}

/// Printable parameter name fragment.
inline std::string sanitize(std::string_view text) {
  std::string out;
  for (char ch : text) {
    if ((ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
        (ch >= '0' && ch <= '9')) {
      out.push_back(ch);
    }
  }
  return out;
}

}  // namespace rla::testing
