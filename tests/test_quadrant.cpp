// Tests of the quadrant FSM tables (CurveOps): orientation counts match the
// paper (§3: one orientation for U/X/Z-Morton, two for Gray-Morton, four for
// Hilbert), and the tables reproduce the direct S functions exactly.

#include <gtest/gtest.h>

#include <functional>

#include "layout/quadrant.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

TEST(Quadrant, OrientationCountsMatchPaper) {
  EXPECT_EQ(CurveOps::get(Curve::UMorton).orientations(), 1);
  EXPECT_EQ(CurveOps::get(Curve::XMorton).orientations(), 1);
  EXPECT_EQ(CurveOps::get(Curve::ZMorton).orientations(), 1);
  EXPECT_EQ(CurveOps::get(Curve::GrayMorton).orientations(), 2);
  EXPECT_EQ(CurveOps::get(Curve::Hilbert).orientations(), 4);
}

TEST(Quadrant, OrientationCountMatchesHelper) {
  for (Curve c : kRecursiveCurves) {
    EXPECT_EQ(CurveOps::get(c).orientations(), orientation_count(c))
        << curve_name(c);
  }
}

TEST(Quadrant, CanonicalCurvesRejected) {
  EXPECT_THROW(CurveOps::get(Curve::ColMajor), std::invalid_argument);
  EXPECT_THROW(CurveOps::get(Curve::RowMajor), std::invalid_argument);
}

TEST(Quadrant, ChunkRowsArePermutations) {
  for (Curve c : kRecursiveCurves) {
    const CurveOps& ops = CurveOps::get(c);
    for (int r = 0; r < ops.orientations(); ++r) {
      int seen = 0;
      for (int q = 0; q < 4; ++q) {
        const int chunk = ops.chunk(r, q);
        ASSERT_GE(chunk, 0);
        ASSERT_LT(chunk, 4);
        seen |= 1 << chunk;
      }
      EXPECT_EQ(seen, 0b1111) << curve_name(c) << " r=" << r;
    }
  }
}

TEST(Quadrant, KnownChunkTablesOrientationZero) {
  // Derived by hand from the S definitions (see test_curves known grids).
  const CurveOps& z = CurveOps::get(Curve::ZMorton);
  EXPECT_EQ(z.chunk(0, kNW), 0);
  EXPECT_EQ(z.chunk(0, kNE), 1);
  EXPECT_EQ(z.chunk(0, kSW), 2);
  EXPECT_EQ(z.chunk(0, kSE), 3);

  const CurveOps& u = CurveOps::get(Curve::UMorton);
  EXPECT_EQ(u.chunk(0, kNW), 0);
  EXPECT_EQ(u.chunk(0, kSW), 1);
  EXPECT_EQ(u.chunk(0, kSE), 2);
  EXPECT_EQ(u.chunk(0, kNE), 3);

  const CurveOps& x = CurveOps::get(Curve::XMorton);
  EXPECT_EQ(x.chunk(0, kNW), 0);
  EXPECT_EQ(x.chunk(0, kSE), 1);
  EXPECT_EQ(x.chunk(0, kSW), 2);
  EXPECT_EQ(x.chunk(0, kNE), 3);

  const CurveOps& g = CurveOps::get(Curve::GrayMorton);
  EXPECT_EQ(g.chunk(0, kNW), 0);
  EXPECT_EQ(g.chunk(0, kNE), 1);
  EXPECT_EQ(g.chunk(0, kSE), 2);
  EXPECT_EQ(g.chunk(0, kSW), 3);
}

TEST(Quadrant, GrayChildOrientationIsColumnParity) {
  // The derivation in DESIGN: a Gray-Morton quadrant's orientation class is
  // its column half, independent of the parent's orientation.
  const CurveOps& g = CurveOps::get(Curve::GrayMorton);
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(g.child_orientation(r, kNW), g.child_orientation(r, kSW));
    EXPECT_EQ(g.child_orientation(r, kNE), g.child_orientation(r, kSE));
    EXPECT_NE(g.child_orientation(r, kNW), g.child_orientation(r, kNE));
  }
}

class LocalOrderTest : public ::testing::TestWithParam<Curve> {};

TEST_P(LocalOrderTest, RootLocalOrderMatchesDirectS) {
  const Curve c = GetParam();
  const CurveOps& ops = CurveOps::get(c);
  for (int level = 1; level <= 5; ++level) {
    const auto order = ops.local_order(0, level);
    const std::uint32_t side = 1u << level;
    ASSERT_EQ(order.size(), std::uint64_t{side} * side);
    for (std::uint64_t s = 0; s < order.size(); ++s) {
      const TileCoord tc = s_inverse(c, s, level);
      ASSERT_EQ(order[s], (tc.i << level) | tc.j)
          << curve_name(c) << " level=" << level << " s=" << s;
    }
  }
}

TEST_P(LocalOrderTest, TablesReproduceDirectSViaRecursion) {
  // Walk the quadrant FSM from the root and verify that the accumulated
  // chunk offsets equal S for every tile — i.e. the embedded addressing of
  // the control structure is exact.
  const Curve c = GetParam();
  const CurveOps& ops = CurveOps::get(c);
  const int depth = 5;
  std::function<void(std::uint32_t, std::uint32_t, int, std::uint64_t, int)> walk =
      [&](std::uint32_t ti0, std::uint32_t tj0, int level, std::uint64_t base,
          int orient) {
        if (level == 0) {
          ASSERT_EQ(base, s_index(c, ti0, tj0, depth))
              << curve_name(c) << " tile " << ti0 << "," << tj0;
          return;
        }
        const std::uint32_t h = 1u << (level - 1);
        for (int q = 0; q < 4; ++q) {
          const std::uint32_t qi = static_cast<std::uint32_t>(q) >> 1;
          const std::uint32_t qj = static_cast<std::uint32_t>(q) & 1;
          walk(ti0 + qi * h, tj0 + qj * h, level - 1,
               base + (static_cast<std::uint64_t>(ops.chunk(orient, q))
                       << (2 * (level - 1))),
               ops.child_orientation(orient, q));
        }
      };
  walk(0, 0, depth, 0, 0);
}

TEST_P(LocalOrderTest, OrderMapIsConsistentPermutation) {
  const Curve c = GetParam();
  const CurveOps& ops = CurveOps::get(c);
  for (int r1 = 0; r1 < ops.orientations(); ++r1) {
    for (int r2 = 0; r2 < ops.orientations(); ++r2) {
      const auto map = ops.order_map(r1, r2, 3);
      const auto from = ops.local_order(r1, 3);
      const auto to = ops.local_order(r2, 3);
      std::vector<bool> hit(map.size(), false);
      for (std::uint64_t s = 0; s < map.size(); ++s) {
        ASSERT_LT(map[s], map.size());
        ASSERT_FALSE(hit[map[s]]);
        hit[map[s]] = true;
        // Same coordinate on both sides.
        ASSERT_EQ(from[s], to[map[s]]);
      }
    }
  }
}

TEST_P(LocalOrderTest, OrderMapIdentityForSameOrientation) {
  const Curve c = GetParam();
  const CurveOps& ops = CurveOps::get(c);
  for (int r = 0; r < ops.orientations(); ++r) {
    const auto map = ops.order_map(r, r, 4);
    for (std::uint64_t s = 0; s < map.size(); ++s) ASSERT_EQ(map[s], s);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRecursive, LocalOrderTest,
                         ::testing::ValuesIn(kRecursiveCurves),
                         [](const ::testing::TestParamInfo<Curve>& info) {
                           return rla::testing::sanitize(curve_name(info.param));
                         });

}  // namespace
}  // namespace rla
