// Tests of the gemm service layer: admission, backpressure, priorities,
// deadlines, batch isolation, the buffer arena, and shutdown semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "core/rla.hpp"
#include "robust/fault.hpp"
#include "service/arena.hpp"
#include "service/service.hpp"
#include "test_common.hpp"

namespace rla::service {
namespace {

using rla::testing::random_matrix;
using namespace std::chrono_literals;

/// Operands plus the service request pointing at them (the request API keeps
/// caller ownership of the matrices, so tests bundle them).
struct Job {
  Matrix a, b, c, c_ref;
  Request req;

  Job(std::uint32_t m, std::uint32_t n, std::uint32_t k, std::uint64_t seed)
      : a(random_matrix(m, k, seed)),
        b(random_matrix(k, n, seed + 1)),
        c(m, n),
        c_ref(m, n) {
    c.zero();
    c_ref.zero();
    req.m = m;
    req.n = n;
    req.k = k;
    req.a = a.data();
    req.lda = a.ld();
    req.b = b.data();
    req.ldb = b.ld();
    req.c = c.data();
    req.ldc = c.ld();
  }

  double error() {
    reference_gemm(req.m, req.n, req.k, 1.0, a.data(), a.ld(), false, b.data(),
                   b.ld(), false, 0.0, c_ref.data(), c_ref.ld());
    return max_abs_diff(c.view(), c_ref.view());
  }
};

bool trail_contains(const Response& r, std::string_view needle) {
  for (const std::string& step : r.degradation_trail) {
    if (step.find(needle) != std::string::npos) return true;
  }
  return false;
}

ServiceConfig small_config() {
  ServiceConfig cfg;
  cfg.threads = 2;
  cfg.executors = 2;
  cfg.max_inflight = 64;
  cfg.watchdog_period = 5ms;
  return cfg;
}

// ---------------------------------------------------------------------------
// Happy path.

TEST(Service, SingleRequestCompletesCorrectly) {
  GemmService service(small_config());
  Job job(64, 64, 64, 1);
  Response r = service.submit(job.req).get();
  EXPECT_EQ(r.outcome, Outcome::Completed) << r.reason;
  EXPECT_EQ(r.attempts, 1);
  EXPECT_GT(r.id, 0u);
  EXPECT_GE(r.queue_seconds, 0.0);
  EXPECT_GT(r.run_seconds, 0.0);
  EXPECT_LT(job.error(), 1e-9);
}

TEST(Service, ConcurrentMixedRequestsAllCorrect) {
  GemmService service(small_config());
  std::vector<std::unique_ptr<Job>> jobs;
  std::vector<std::future<Response>> futures;
  const std::uint32_t sizes[] = {16, 48, 64, 96, 33, 80, 17, 128};
  for (int i = 0; i < 16; ++i) {
    auto job = std::make_unique<Job>(sizes[i % 8], sizes[(i + 3) % 8],
                                     sizes[(i + 5) % 8], 100 + i);
    job->req.priority = i % 3;
    futures.push_back(service.submit(job->req));
    jobs.push_back(std::move(job));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    Response r = futures[i].get();
    EXPECT_EQ(r.outcome, Outcome::Completed) << i << ": " << r.reason;
    EXPECT_LT(jobs[i]->error(), 1e-8) << i;
  }
}

TEST(Service, BatchSubmissionResolvesEveryElement) {
  GemmService service(small_config());
  std::vector<std::unique_ptr<Job>> jobs;
  std::vector<Request> reqs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(std::make_unique<Job>(48, 48, 48, 200 + i));
    reqs.push_back(jobs.back()->req);
  }
  auto futures = service.submit_batch(reqs);
  ASSERT_EQ(futures.size(), reqs.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get().outcome, Outcome::Completed);
    EXPECT_LT(jobs[i]->error(), 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Satellite: a faulting batch element must not disturb its siblings.

TEST(Service, BatchWithOneFaultingElementCompletesRest) {
  GemmService service(small_config());
  std::vector<std::unique_ptr<Job>> jobs;
  std::vector<Request> reqs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(std::make_unique<Job>(64, 64, 64, 300 + i));
    reqs.push_back(jobs.back()->req);
  }
  reqs[2].lda = 1;  // < m: gemm rejects the arguments, attempt cannot succeed
  auto futures = service.submit_batch(reqs);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    Response r = futures[i].get();
    if (i == 2) {
      EXPECT_EQ(r.outcome, Outcome::Failed);
      EXPECT_NE(r.reason.find("lda"), std::string::npos);
      EXPECT_EQ(r.attempts, 1);  // bad arguments fail fast, no retry burn
    } else {
      EXPECT_EQ(r.outcome, Outcome::Completed) << i << ": " << r.reason;
      EXPECT_LT(jobs[i]->error(), 1e-9) << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Deadlines and cancellation.

TEST(Service, ImpossibleDeadlineIsCancelledPromptly) {
  ServiceConfig cfg = small_config();
  GemmService service(cfg);
  Job job(512, 512, 512, 7);
  job.req.deadline = 1ms;  // a 512^3 multiply cannot finish in 1 ms
  const auto t0 = std::chrono::steady_clock::now();
  Response r = service.submit(job.req).get();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(r.outcome, Outcome::Cancelled) << r.reason;
  EXPECT_TRUE(trail_contains(r, "service:deadline"));
  // Cooperative cancellation plus one watchdog sweep, with CI slack; far
  // below the full multiply's runtime.
  EXPECT_LT(elapsed, 2s);
}

TEST(Service, DeadlineExpiryRacingNormalCompletionResolvesEitherWay) {
  // Satellite test: deadlines near the actual runtime race completion. Any
  // single request may land Completed OR Cancelled — both are valid — but
  // every future must resolve, outcomes must be terminal, and a cancelled
  // request must not have burned time past its budget unbounded.
  GemmService service(small_config());
  // Calibrate: one clean run of the shape.
  Job probe(160, 160, 160, 40);
  Response cal = service.submit(probe.req).get();
  ASSERT_EQ(cal.outcome, Outcome::Completed);
  const auto runtime =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::duration<double>(std::max(cal.run_seconds, 1e-4)));

  std::vector<std::unique_ptr<Job>> jobs;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 12; ++i) {
    auto job = std::make_unique<Job>(160, 160, 160, 500 + i);
    // Sweep deadlines through the completion window: some multiples of the
    // calibrated runtime land before it, some after.
    job->req.deadline = runtime * (i + 1) / 6;
    futures.push_back(service.submit(job->req));
    jobs.push_back(std::move(job));
  }
  int completed = 0, cancelled = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    Response r = futures[i].get();  // must resolve: no hung requests
    if (r.outcome == Outcome::Cancelled) {
      ++cancelled;
      EXPECT_TRUE(trail_contains(r, "service:deadline"));
    } else {
      ASSERT_EQ(r.outcome, Outcome::Completed) << i << ": " << r.reason;
      ++completed;
      EXPECT_LT(jobs[i]->error(), 1e-8);
    }
  }
  EXPECT_EQ(completed + cancelled, 12);
}

TEST(Service, QueuedRequestPastDeadlineNeverRuns) {
  // One executor, occupied by an injected 200 ms stall; a queued request
  // with a 10 ms deadline must be finalized by the watchdog from the queue,
  // long before the executor frees up.
  ServiceConfig cfg = small_config();
  cfg.executors = 1;
  GemmService service(cfg);
  fault::ScopedPlan stall("service.stall:nth=1");

  Job blocker(32, 32, 32, 1);
  auto blocker_future = service.submit(blocker.req);
  std::this_thread::sleep_for(20ms);  // let the executor enter the stall

  Job urgent(32, 32, 32, 2);
  urgent.req.deadline = 10ms;
  const auto t0 = std::chrono::steady_clock::now();
  Response r = service.submit(urgent.req).get();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(r.outcome, Outcome::Cancelled);
  EXPECT_EQ(r.attempts, 0);  // never picked up
  EXPECT_EQ(r.run_seconds, 0.0);
  EXPECT_LT(elapsed, 150ms);  // watchdog acted while the executor was dark
  const Response blocked = blocker_future.get();
  EXPECT_TRUE(blocked.outcome == Outcome::Completed ||
              blocked.outcome == Outcome::Degraded);
}

TEST(Service, SubmitWakeupReachesExecutorOnQuietService) {
  // Regression: the watchdog used to sleep on work_cv_ with a predicate-less
  // wait_for, so submit()'s notify_one could be consumed by the watchdog
  // instead of an executor and a deadline-less request would sit queued
  // indefinitely on a quiet service. With the watchdog period far longer
  // than the test, only a genuine executor wakeup can finish these in time.
  ServiceConfig cfg = small_config();
  cfg.executors = 1;
  cfg.watchdog_period = std::chrono::milliseconds(60'000);
  GemmService service(cfg);
  for (int i = 0; i < 20; ++i) {
    Job job(16, 16, 16, 1000 + i);
    auto f = service.submit(job.req);
    ASSERT_EQ(f.wait_for(5s), std::future_status::ready) << "request " << i;
    EXPECT_EQ(f.get().outcome, Outcome::Completed);
  }
}

// ---------------------------------------------------------------------------
// Priorities.

TEST(Service, HigherPriorityOvertakesQueueBacklog) {
  ServiceConfig cfg = small_config();
  cfg.executors = 1;  // serialize execution so queue order is completion order
  GemmService service(cfg);
  fault::ScopedPlan stall("service.stall:nth=1");

  Job blocker(32, 32, 32, 1);
  auto blocker_future = service.submit(blocker.req);
  std::this_thread::sleep_for(20ms);  // executor now dark in the stall

  Job low(96, 96, 96, 2), high(96, 96, 96, 3);
  low.req.priority = 0;
  high.req.priority = 5;
  auto low_future = service.submit(low.req);      // submitted FIRST
  auto high_future = service.submit(high.req);    // must overtake
  Response rl = low_future.get();
  Response rh = high_future.get();
  blocker_future.get();
  ASSERT_EQ(rl.outcome, Outcome::Completed);
  ASSERT_EQ(rh.outcome, Outcome::Completed);
  // Single executor: whichever ran first spent less time queued. High was
  // submitted after low, so overtaking shows as strictly less queue time.
  EXPECT_LT(rh.queue_seconds, rl.queue_seconds);
}

// ---------------------------------------------------------------------------
// Backpressure and admission control.

TEST(Service, BackpressureRejectsBeyondMaxInflight) {
  ServiceConfig cfg = small_config();
  cfg.executors = 1;
  cfg.max_inflight = 2;
  GemmService service(cfg);
  fault::ScopedPlan stall("service.stall:nth=1");

  std::vector<std::unique_ptr<Job>> jobs;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(std::make_unique<Job>(32, 32, 32, 700 + i));
    futures.push_back(service.submit(jobs.back()->req));
  }
  int rejected = 0;
  for (auto& f : futures) {
    Response r = f.get();
    if (r.outcome == Outcome::Rejected) {
      ++rejected;
      EXPECT_EQ(r.reason, "queue-full");
      EXPECT_EQ(r.attempts, 0);
    }
  }
  // 2 slots (1 stalled-running + 1 queued); at least the last 4 submits
  // bounced. Slots may free mid-loop, so assert the bound, not equality.
  EXPECT_GE(rejected, 3);
}

TEST(Service, ArenaPressureDegradesAdmission) {
  ServiceConfig cfg = small_config();
  cfg.arena_bytes = 64 << 10;  // far below the tiled footprint of 128^3
  GemmService service(cfg);
  Job job(128, 128, 128, 9);
  Response r = service.submit(job.req).get();
  EXPECT_EQ(r.outcome, Outcome::Degraded) << r.reason;
  EXPECT_TRUE(trail_contains(r, "service:degraded:arena"));
  EXPECT_LT(job.error(), 1e-9);  // degraded, still correct
}

TEST(Service, ArenaPressureRejectsWhenDegradationForbidden) {
  ServiceConfig cfg = small_config();
  cfg.arena_bytes = 64 << 10;
  GemmService service(cfg);
  Job job(128, 128, 128, 10);
  job.req.allow_degradation = false;
  Response r = service.submit(job.req).get();
  EXPECT_EQ(r.outcome, Outcome::Rejected);
  EXPECT_EQ(r.reason, "arena-budget");
}

TEST(Service, ArenaRecyclesBuffersAcrossRequests) {
  GemmService service(small_config());
  for (int i = 0; i < 8; ++i) {
    Job job(64, 64, 64, 800 + i);
    ASSERT_EQ(service.submit(job.req).get().outcome, Outcome::Completed);
  }
  // Same shape 8 times: after the first request warmed the free lists, the
  // conversion buffers must come from the arena, not malloc.
  EXPECT_GT(service.arena().recycled(), 0u);
  EXPECT_LT(service.arena().allocations(), 3u * 8u);
}

// ---------------------------------------------------------------------------
// Retries.

TEST(Service, TransientFaultIsRetriedToCompletion) {
  GemmService service(small_config());
  // Process-global plan (not per-request fault_spec, which would re-arm and
  // re-fire on every attempt): the hit counter persists across attempts, so
  // nth=1 models a genuinely transient fault — first attempt dies, retry is
  // clean.
  fault::ScopedPlan transient("task.throw:nth=1");
  Job job(64, 64, 64, 11);
  job.req.retry_budget = 2;
  // Degradation rewrites would dodge the fault instead of exercising the
  // retry path; pin the config.
  job.req.allow_degradation = false;
  Response r = service.submit(job.req).get();
  EXPECT_EQ(r.outcome, Outcome::Degraded) << r.reason;  // retry is an event
  EXPECT_GE(r.attempts, 2);
  EXPECT_TRUE(trail_contains(r, "service:retry"));
  EXPECT_LT(job.error(), 1e-9);
}

TEST(Service, ExhaustedRetriesFail) {
  GemmService service(small_config());
  Job job(64, 64, 64, 12);
  job.req.cfg.fault_spec = "task.throw:p=1";  // every attempt fails
  job.req.retry_budget = 1;
  job.req.allow_degradation = false;
  Response r = service.submit(job.req).get();
  EXPECT_EQ(r.outcome, Outcome::Failed);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_FALSE(r.reason.empty());
}

TEST(Service, MalformedFaultSpecFailsFastWithoutRetries) {
  // A config parse error is deterministic: retrying (or degrading) cannot
  // make it succeed, so it must fail on the first attempt like bad args.
  GemmService service(small_config());
  Job job(64, 64, 64, 22);
  job.req.cfg.fault_spec = "bogus.site:nth=1";  // rla-lint: bad-site-ok
  job.req.retry_budget = 3;
  Response r = service.submit(job.req).get();
  EXPECT_EQ(r.outcome, Outcome::Failed);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_FALSE(trail_contains(r, "service:retry"));
  EXPECT_NE(r.reason.find("fault"), std::string::npos) << r.reason;
}

TEST(Service, InjectedStallAloneIsNotDegraded) {
  // An absorbed stall followed by a clean run on the original config is a
  // Completed outcome: only config rewrites and retries count as Degraded,
  // even though the stall leaves an informational trail entry.
  GemmService service(small_config());
  fault::ScopedPlan stall("service.stall:nth=1");
  Job job(32, 32, 32, 23);
  Response r = service.submit(job.req).get();
  EXPECT_EQ(r.outcome, Outcome::Completed) << r.reason;
  EXPECT_TRUE(trail_contains(r, "service:stall-injected"));
}

// ---------------------------------------------------------------------------
// Shutdown.

TEST(Service, ShutdownDrainsAndRefusesNewWork) {
  auto service = std::make_unique<GemmService>(small_config());
  Job before(64, 64, 64, 13);
  auto f = service->submit(before.req);
  service->shutdown();
  EXPECT_EQ(f.get().outcome, Outcome::Completed);  // accepted work finished

  Job after(32, 32, 32, 14);
  Response r = service->submit(after.req).get();
  EXPECT_EQ(r.outcome, Outcome::Rejected);
  EXPECT_EQ(r.reason, "shutdown");
  service.reset();  // double-shutdown via destructor must be a no-op
}

TEST(Service, DestructorFinalizesQueuedRequests) {
  std::vector<std::future<Response>> futures;
  std::vector<std::unique_ptr<Job>> jobs;
  {
    ServiceConfig cfg = small_config();
    cfg.executors = 1;
    GemmService service(cfg);
    fault::ScopedPlan stall("service.stall:nth=1");
    for (int i = 0; i < 4; ++i) {
      jobs.push_back(std::make_unique<Job>(32, 32, 32, 900 + i));
      futures.push_back(service.submit(jobs.back()->req));
    }
    // Destruction drains: whatever the stalled executor already picked up
    // completes once the bounded stall ends, and the queued rest run after.
  }
  int terminal = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(0s), std::future_status::ready);  // nothing leaked
    Response r = f.get();
    EXPECT_TRUE(r.outcome == Outcome::Completed || r.outcome == Outcome::Degraded ||
                r.outcome == Outcome::Cancelled)
        << outcome_name(r.outcome);
    ++terminal;
  }
  EXPECT_EQ(terminal, 4);
}

TEST(Service, ShutdownPromptDespiteLongWatchdogPeriod) {
  // Regression: the watchdog used to nap in a predicate-less wait_for, so a
  // shutdown() that raced the start of a nap could miss the wakeup and sit
  // out a full period before noticing stopping_. With the predicate wait
  // (stopping_ && inflight_ == 0, re-checked under service_mutex_), the
  // drain must return promptly even when the period dwarfs the test.
  ServiceConfig cfg = small_config();
  cfg.watchdog_period = std::chrono::milliseconds(60'000);
  GemmService service(cfg);
  Job job(32, 32, 32, 21);
  ASSERT_EQ(service.submit(job.req).get().outcome, Outcome::Completed);
  const auto t0 = std::chrono::steady_clock::now();
  service.shutdown();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);
}

TEST(Service, RunTimingsConsistentUnderDeadlineRaces) {
  // Regression: Pending::started was a plain bool written by the executor
  // after run_tp and read by the watchdog's finalize — a data race in which
  // finalize could observe started == true while run_tp was still the
  // epoch, turning run_seconds into a garbage machine-uptime-sized value.
  // The release store / acquire load now publishes (started, run_tp)
  // indivisibly; hammer deadline/execution races and assert every timing
  // stays sane. (attempts == 0 with a tiny run_seconds is legitimate: an
  // executor may pick a request up and find the deadline already gone.)
  ServiceConfig cfg = small_config();
  cfg.watchdog_period = 1ms;
  GemmService service(cfg);
  std::vector<std::unique_ptr<Job>> jobs;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 48; ++i) {
    jobs.push_back(std::make_unique<Job>(24, 24, 24, 2000 + i));
    // Mix of no deadline, unmeetable, and race-window deadlines.
    jobs.back()->req.deadline = std::chrono::microseconds((i % 4) * 300);
    futures.push_back(service.submit(jobs.back()->req));
  }
  for (auto& f : futures) {
    const Response r = f.get();
    EXPECT_GE(r.queue_seconds, 0.0);
    EXPECT_GE(r.run_seconds, 0.0);
    // An epoch-based run_tp read through the old race would report the
    // host's uptime here; any honest value is bounded by the test itself.
    EXPECT_LT(r.queue_seconds, 60.0) << outcome_name(r.outcome);
    EXPECT_LT(r.run_seconds, 60.0) << outcome_name(r.outcome);
  }
}

// ---------------------------------------------------------------------------
// Metrics export (satellite: service SLO surface incl. scheduler stats).

TEST(Service, MetricsJsonCarriesServiceArenaAndSchedulerSeries) {
  GemmService service(small_config());
  Job job(64, 64, 64, 15);
  ASSERT_EQ(service.submit(job.req).get().outcome, Outcome::Completed);
  const std::string json = service.metrics_json();
  for (const char* key :
       {"service.submitted", "service.accepted", "service.outcome.completed",
        "service.queue_ns", "service.run_ns", "service.total_ns",
        "service.in_flight", "service.queue_depth", "arena.recycled",
        "arena.reserved_high_water", "sched.total.steals",
        "sched.total.tasks", "sched.exceptions_swallowed"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

// ---------------------------------------------------------------------------
// BufferArena unit behavior.

TEST(Arena, BudgetReservationsAdmitAndReject) {
  BufferArena arena(1024);
  auto r1 = arena.try_reserve(600);
  EXPECT_TRUE(static_cast<bool>(r1));
  auto r2 = arena.try_reserve(600);  // 1200 > 1024
  EXPECT_FALSE(static_cast<bool>(r2));
  EXPECT_EQ(arena.rejections(), 1u);
  r1.release();
  auto r3 = arena.try_reserve(1000);
  EXPECT_TRUE(static_cast<bool>(r3));
  EXPECT_EQ(arena.reserved_high_water(), 1000u);
}

TEST(Arena, ReservationReleasesOnDestruction) {
  BufferArena arena(100);
  {
    auto r = arena.try_reserve(100);
    EXPECT_TRUE(static_cast<bool>(r));
    EXPECT_EQ(arena.reserved_bytes(), 100u);
  }
  EXPECT_EQ(arena.reserved_bytes(), 0u);
}

TEST(Arena, AcquireRecyclesSizeClasses) {
  BufferArena arena(0);  // unlimited
  AlignedBuffer<double> buf = arena.acquire(100);
  EXPECT_GE(buf.size(), 100u);
  const double* data = buf.data();
  arena.release(std::move(buf));
  AlignedBuffer<double> again = arena.acquire(90);  // same 128-class
  EXPECT_EQ(again.data(), data);
  EXPECT_EQ(arena.recycled(), 1u);
  EXPECT_EQ(arena.allocations(), 1u);
}

TEST(Arena, AdmissionCountsCachedBytesAndEvictsToAdmit) {
  // Budget caps reserved + cached. A reservation that collides with idle
  // cache must evict the cache and then be admitted, not overshoot the
  // budget and not be rejected while evictable bytes exist.
  BufferArena arena(1024);
  AlignedBuffer<double> buf = arena.acquire(64);  // 64-double class = 512 B
  arena.release(std::move(buf));
  ASSERT_EQ(arena.cached_bytes(), 512u);

  auto r = arena.try_reserve(768);  // 512 cached + 768 > 1024, but fits alone
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(arena.cached_bytes(), 0u);    // cache evicted to admit
  EXPECT_EQ(arena.reserved_bytes(), 768u);
  EXPECT_EQ(arena.rejections(), 0u);

  // Even after eviction this one cannot fit: reject.
  auto r2 = arena.try_reserve(512);
  EXPECT_FALSE(static_cast<bool>(r2));
  EXPECT_EQ(arena.rejections(), 1u);
}

TEST(Arena, CachedBuffersDroppedOverBudgetAndTrimmed) {
  BufferArena arena(256 * sizeof(double));
  AlignedBuffer<double> big = arena.acquire(512);  // over the whole budget
  arena.release(std::move(big));
  EXPECT_EQ(arena.cached_bytes(), 0u);  // dropped, not cached
  AlignedBuffer<double> small = arena.acquire(64);
  arena.release(std::move(small));
  EXPECT_GT(arena.cached_bytes(), 0u);
  arena.trim();
  EXPECT_EQ(arena.cached_bytes(), 0u);
}

}  // namespace
}  // namespace rla::service
