// Tests of the leaf multiply kernels (all tiers) and the streaming /
// strided elementwise helpers.

#include <gtest/gtest.h>

#include <tuple>

#include "core/kernels.hpp"
#include "core/matrix.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

using rla::testing::random_matrix;

class KernelTest
    : public ::testing::TestWithParam<
          std::tuple<KernelKind, std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>> {};

TEST_P(KernelTest, MatchesReference) {
  const auto [kind, shape] = GetParam();
  const auto [m, n, k] = shape;
  Matrix a = random_matrix(m, k, 10);
  Matrix b = random_matrix(k, n, 11);
  Matrix c = random_matrix(m, n, 12);
  Matrix c_ref = c;
  leaf_mm(kind, m, n, k, 1.0, a.data(), a.ld(), b.data(), b.ld(), c.data(), c.ld());
  reference_gemm(m, n, k, 1.0, a.data(), a.ld(), false, b.data(), b.ld(), false,
                 1.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-12)
      << kernel_name(kind) << " " << m << "x" << n << "x" << k;
}

TEST_P(KernelTest, AlphaScaling) {
  const auto [kind, shape] = GetParam();
  const auto [m, n, k] = shape;
  Matrix a = random_matrix(m, k, 20);
  Matrix b = random_matrix(k, n, 21);
  Matrix c = random_matrix(m, n, 22);
  Matrix c_ref = c;
  leaf_mm(kind, m, n, k, -1.75, a.data(), a.ld(), b.data(), b.ld(), c.data(),
          c.ld());
  reference_gemm(m, n, k, -1.75, a.data(), a.ld(), false, b.data(), b.ld(), false,
                 1.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelTest,
    ::testing::Combine(
        ::testing::Values(KernelKind::Naive, KernelKind::TiledUnrolled,
                          KernelKind::Blocked4x4),
        ::testing::Values(std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>{1, 1, 1},
                          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>{4, 4, 4},
                          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>{16, 16, 16},
                          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>{32, 32, 32},
                          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>{33, 17, 9},
                          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>{7, 5, 3},
                          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>{64, 48, 40},
                          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>{5, 64, 13})),
    [](const auto& info) {
      const KernelKind kind = std::get<0>(info.param);
      const auto shape = std::get<1>(info.param);
      return rla::testing::sanitize(kernel_name(kind)) + "_" +
             std::to_string(std::get<0>(shape)) + "x" +
             std::to_string(std::get<1>(shape)) + "x" +
             std::to_string(std::get<2>(shape));
    });

TEST(Kernels, LeadingDimensionViews) {
  // Multiply submatrix views inside larger arrays (exercises the canonical
  // baseline's ld-carrying leaves).
  Matrix big_a = random_matrix(20, 20, 30);
  Matrix big_b = random_matrix(20, 20, 31);
  Matrix big_c(20, 20);
  big_c.zero();
  Matrix ref(6, 5);
  ref.zero();
  // A block at (3,2) of size 6x4, B block at (1,7) of size 4x5.
  for (KernelKind kind :
       {KernelKind::Naive, KernelKind::TiledUnrolled, KernelKind::Blocked4x4}) {
    big_c.zero();
    leaf_mm(kind, 6, 5, 4, 1.0, &big_a(3, 2), big_a.ld(), &big_b(1, 7),
            big_b.ld(), &big_c(0, 0), big_c.ld());
    ref.zero();
    reference_gemm(6, 5, 4, 1.0, &big_a(3, 2), big_a.ld(), false, &big_b(1, 7),
                   big_b.ld(), false, 0.0, ref.data(), ref.ld());
    for (std::uint32_t i = 0; i < 6; ++i) {
      for (std::uint32_t j = 0; j < 5; ++j) {
        ASSERT_NEAR(big_c(i, j), ref(i, j), 1e-13) << kernel_name(kind);
      }
    }
  }
}

TEST(Kernels, ZeroDimensionsAreNoOps) {
  Matrix c = random_matrix(4, 4, 40);
  Matrix before = c;
  leaf_mm(KernelKind::TiledUnrolled, 0, 4, 4, 1.0, nullptr, 1, nullptr, 1,
          c.data(), c.ld());
  leaf_mm(KernelKind::TiledUnrolled, 4, 4, 0, 1.0, nullptr, 1, nullptr, 1,
          c.data(), c.ld());
  leaf_mm(KernelKind::Blocked4x4, 4, 4, 4, 0.0, nullptr, 1, nullptr, 1, c.data(),
          c.ld());
  EXPECT_EQ(max_abs_diff(c.view(), before.view()), 0.0);
}

TEST(Kernels, VectorOps) {
  constexpr std::uint64_t n = 257;  // odd length to catch tail handling
  std::vector<double> a(n), b(n), c(n), d(n), dst(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    a[i] = static_cast<double>(i);
    b[i] = 2.0 * static_cast<double>(i) + 1;
    c[i] = -static_cast<double>(i);
    d[i] = 0.5;
  }
  vset_add(dst.data(), a.data(), -1.0, b.data(), n);
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_DOUBLE_EQ(dst[i], a[i] - b[i]);

  vacc(dst.data(), 2.0, c.data(), n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(dst[i], a[i] - b[i] + 2.0 * c[i]);
  }

  std::fill(dst.begin(), dst.end(), 1.0);
  vacc2(dst.data(), 1.0, a.data(), -1.0, b.data(), n);
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_DOUBLE_EQ(dst[i], 1.0 + a[i] - b[i]);

  std::fill(dst.begin(), dst.end(), 0.0);
  vacc3(dst.data(), 1.0, a.data(), 1.0, b.data(), 1.0, c.data(), n);
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_DOUBLE_EQ(dst[i], a[i] + b[i] + c[i]);

  std::fill(dst.begin(), dst.end(), 0.0);
  vacc4(dst.data(), 1.0, a.data(), -1.0, b.data(), 1.0, c.data(), -1.0, d.data(), n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(dst[i], a[i] - b[i] + c[i] - d[i]);
  }
}

TEST(Kernels, StridedOps) {
  Matrix a = random_matrix(7, 9, 50);
  Matrix b = random_matrix(7, 9, 51);
  Matrix d(7, 9);
  strided_set_add(d.data(), d.ld(), a.data(), a.ld(), -1.0, b.data(), b.ld(), 7, 9);
  for (std::uint32_t j = 0; j < 9; ++j) {
    for (std::uint32_t i = 0; i < 7; ++i) {
      ASSERT_DOUBLE_EQ(d(i, j), a(i, j) - b(i, j));
    }
  }
  strided_acc(d.data(), d.ld(), 2.0, b.data(), b.ld(), 7, 9);
  for (std::uint32_t j = 0; j < 9; ++j) {
    for (std::uint32_t i = 0; i < 7; ++i) {
      ASSERT_DOUBLE_EQ(d(i, j), a(i, j) + b(i, j));
    }
  }
  strided_scale(d.data(), d.ld(), 0.5, 7, 9);
  ASSERT_DOUBLE_EQ(d(3, 3), 0.5 * (a(3, 3) + b(3, 3)));
  strided_scale(d.data(), d.ld(), 0.0, 7, 9);
  EXPECT_EQ(max_abs(d.view()), 0.0);
}

TEST(Kernels, StridedScaleZeroKillsNaN) {
  Matrix d(2, 2);
  d(0, 0) = std::numeric_limits<double>::quiet_NaN();
  strided_scale(d.data(), d.ld(), 0.0, 2, 2);
  EXPECT_EQ(d(0, 0), 0.0);
}

TEST(Kernels, StridedTranspose) {
  Matrix src = random_matrix(13, 37, 60);
  Matrix dst(37, 13);
  strided_transpose(dst.data(), dst.ld(), src.data(), src.ld(), 37, 13);
  for (std::uint32_t i = 0; i < 37; ++i) {
    for (std::uint32_t j = 0; j < 13; ++j) ASSERT_EQ(dst(i, j), src(j, i));
  }
}

TEST(Kernels, StridedCopy) {
  Matrix src = random_matrix(8, 8, 70);
  Matrix dst(8, 8);
  dst.zero();
  strided_copy(dst.data(), dst.ld(), src.data(), src.ld(), 8, 8);
  EXPECT_EQ(max_abs_diff(src.view(), dst.view()), 0.0);
}

}  // namespace
}  // namespace rla
