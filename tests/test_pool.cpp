// Tests of the work-stealing pool and fork-join task groups.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "parallel/worker_pool.hpp"
#include "support/sync.hpp"

namespace rla {
namespace {

TEST(Pool, SerialPoolRunsInline) {
  WorkerPool pool(0);
  EXPECT_TRUE(pool.serial());
  int order = 0;
  TaskGroup group(pool);
  int first = -1, second = -1;
  group.spawn([&] { first = order++; });
  group.spawn([&] { second = order++; });
  group.wait();
  EXPECT_EQ(first, 0);   // inline => executed at spawn time, in order
  EXPECT_EQ(second, 1);
}

TEST(Pool, ParallelSum) {
  WorkerPool pool(3);
  std::atomic<std::int64_t> sum{0};
  TaskGroup group(pool);
  for (int i = 1; i <= 1000; ++i) {
    group.spawn([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(sum.load(), 500500);
  EXPECT_GE(pool.tasks_executed(), 1000u);
}

TEST(Pool, ParallelForCoversRangeExactlyOnce) {
  WorkerPool pool(2);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(), 64, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Pool, ParallelForEmptyAndTinyRanges) {
  WorkerPool pool(2);
  int calls = 0;
  Mutex m;  // lock-level: registry
  pool.parallel_for(5, 5, 16, [&](std::uint64_t, std::uint64_t) {
    MutexLock lock(m);
    ++calls;
  });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(5, 6, 16, [&](std::uint64_t b, std::uint64_t e) {
    MutexLock lock(m);
    EXPECT_EQ(b, 5u);
    EXPECT_EQ(e, 6u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

std::int64_t parallel_fib(WorkerPool& pool, int n) {
  if (n < 2) return n;
  if (n < 12) return parallel_fib(pool, n - 1) + parallel_fib(pool, n - 2);
  std::int64_t a = 0, b = 0;
  TaskGroup group(pool);
  group.spawn([&] { a = parallel_fib(pool, n - 1); });
  group.run([&] { b = parallel_fib(pool, n - 2); });
  group.wait();
  return a + b;
}

TEST(Pool, NestedForkJoinFibonacci) {
  // The canonical Cilk example: nested spawns with helping waits.
  WorkerPool pool(4);
  EXPECT_EQ(parallel_fib(pool, 24), 46368);
}

TEST(Pool, NestedFibonacciSerial) {
  WorkerPool pool(0);
  EXPECT_EQ(parallel_fib(pool, 20), 6765);
}

TEST(Pool, ExceptionPropagatesFromSpawnedTask) {
  WorkerPool pool(2);
  TaskGroup group(pool);
  group.spawn([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 50; ++i) group.spawn([] {});
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(Pool, ExceptionPropagatesSerial) {
  WorkerPool pool(0);
  TaskGroup group(pool);
  EXPECT_NO_THROW(group.spawn([] {}));
  group.run([] { throw std::logic_error("inline"); });
  EXPECT_THROW(group.wait(), std::logic_error);
}

TEST(Pool, GroupReusableAfterWait) {
  WorkerPool pool(2);
  std::atomic<int> count{0};
  TaskGroup group(pool);
  group.spawn([&] { ++count; });
  group.wait();
  group.spawn([&] { ++count; });
  group.spawn([&] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(Pool, ManySmallGroupsStress) {
  WorkerPool pool(4);
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    TaskGroup group(pool);
    for (int i = 0; i < 20; ++i) {
      group.spawn([&total] { total.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
  }
  EXPECT_EQ(total.load(), 4000);
}

TEST(Pool, LowestSpawnOrderExceptionWinsDeterministically) {
  // Several tasks throw; wait() must rethrow the one with the lowest spawn
  // index no matter how the scheduler interleaved them. Repeat across serial
  // and parallel pools and many rounds to shake out ordering luck.
  for (const unsigned threads : {0u, 4u}) {
    WorkerPool pool(threads);
    for (int round = 0; round < 25; ++round) {
      TaskGroup group(pool);
      for (int i = 0; i < 32; ++i) {
        group.spawn([i] {
          if (i % 5 == 2) {  // failures at spawn indices 2, 7, 12, ...
            throw std::runtime_error("task " + std::to_string(i));
          }
        });
      }
      try {
        group.wait();
        FAIL() << "expected an exception";
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "task 2");
      }
    }
    EXPECT_EQ(pool.exceptions_swallowed(), 0u);
  }
}

TEST(Pool, CancellationPrunesRecursionStress) {
  // A recursive descent wired to one shared cancellation flag: after the
  // first failure, cooperating tasks stop descending. The test asserts the
  // flag trips, the exception still propagates deterministically, and — on
  // the serial pool, where spawn order is the execution order — work after
  // the first failure is actually pruned.
  for (const unsigned threads : {0u, 4u}) {
    WorkerPool pool(threads);
    for (int round = 0; round < 10; ++round) {
      std::atomic<bool> cancel{false};
      std::atomic<int> visited{0};
      std::function<void(TaskGroup&, int)> descend = [&](TaskGroup& parent,
                                                         int depth) {
        if (parent.cancelled()) return;  // prune this subtree
        visited.fetch_add(1, std::memory_order_relaxed);
        if (depth == 0) return;
        TaskGroup group(pool, &cancel);
        for (int c = 0; c < 2; ++c) {
          group.spawn([&, depth] {
            if (depth == 3 && visited.load(std::memory_order_relaxed) > 4) {
              throw std::logic_error("poisoned node");
            }
            descend(group, depth - 1);
          });
        }
        group.wait();
      };
      TaskGroup root(pool, &cancel);
      bool threw = false;
      try {
        descend(root, 6);
      } catch (const std::logic_error&) {
        threw = true;
      }
      EXPECT_TRUE(threw);
      EXPECT_TRUE(cancel.load());
      if (threads == 0) {
        // Full tree: 2^7 - 1 = 127 nodes. Pruning must have cut well over
        // half of it (the serial schedule hits a poisoned node early).
        EXPECT_LT(visited.load(), 64);
      }
      EXPECT_EQ(pool.exceptions_swallowed(), 0u);
    }
  }
}

TEST(Pool, StealsHappenUnderImbalance) {
  // One external submitter, several workers: work must be distributed, so
  // with enough tasks at least one steal (or injection pickup) occurs and
  // all tasks complete.
  WorkerPool pool(4);
  std::atomic<int> done{0};
  TaskGroup group(pool);
  for (int i = 0; i < 500; ++i) {
    group.spawn([&done] {
      volatile int spin = 0;
      for (int s = 0; s < 200; ++s) spin = spin + s;
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  group.wait();
  EXPECT_EQ(done.load(), 500);
}

}  // namespace
}  // namespace rla
