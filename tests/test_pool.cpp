// Tests of the work-stealing pool and fork-join task groups.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "parallel/worker_pool.hpp"

namespace rla {
namespace {

TEST(Pool, SerialPoolRunsInline) {
  WorkerPool pool(0);
  EXPECT_TRUE(pool.serial());
  int order = 0;
  TaskGroup group(pool);
  int first = -1, second = -1;
  group.spawn([&] { first = order++; });
  group.spawn([&] { second = order++; });
  group.wait();
  EXPECT_EQ(first, 0);   // inline => executed at spawn time, in order
  EXPECT_EQ(second, 1);
}

TEST(Pool, ParallelSum) {
  WorkerPool pool(3);
  std::atomic<std::int64_t> sum{0};
  TaskGroup group(pool);
  for (int i = 1; i <= 1000; ++i) {
    group.spawn([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(sum.load(), 500500);
  EXPECT_GE(pool.tasks_executed(), 1000u);
}

TEST(Pool, ParallelForCoversRangeExactlyOnce) {
  WorkerPool pool(2);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(), 64, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Pool, ParallelForEmptyAndTinyRanges) {
  WorkerPool pool(2);
  int calls = 0;
  std::mutex m;
  pool.parallel_for(5, 5, 16, [&](std::uint64_t, std::uint64_t) {
    std::lock_guard<std::mutex> lock(m);
    ++calls;
  });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(5, 6, 16, [&](std::uint64_t b, std::uint64_t e) {
    std::lock_guard<std::mutex> lock(m);
    EXPECT_EQ(b, 5u);
    EXPECT_EQ(e, 6u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

std::int64_t parallel_fib(WorkerPool& pool, int n) {
  if (n < 2) return n;
  if (n < 12) return parallel_fib(pool, n - 1) + parallel_fib(pool, n - 2);
  std::int64_t a = 0, b = 0;
  TaskGroup group(pool);
  group.spawn([&] { a = parallel_fib(pool, n - 1); });
  group.run([&] { b = parallel_fib(pool, n - 2); });
  group.wait();
  return a + b;
}

TEST(Pool, NestedForkJoinFibonacci) {
  // The canonical Cilk example: nested spawns with helping waits.
  WorkerPool pool(4);
  EXPECT_EQ(parallel_fib(pool, 24), 46368);
}

TEST(Pool, NestedFibonacciSerial) {
  WorkerPool pool(0);
  EXPECT_EQ(parallel_fib(pool, 20), 6765);
}

TEST(Pool, ExceptionPropagatesFromSpawnedTask) {
  WorkerPool pool(2);
  TaskGroup group(pool);
  group.spawn([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 50; ++i) group.spawn([] {});
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(Pool, ExceptionPropagatesSerial) {
  WorkerPool pool(0);
  TaskGroup group(pool);
  EXPECT_NO_THROW(group.spawn([] {}));
  group.run([] { throw std::logic_error("inline"); });
  EXPECT_THROW(group.wait(), std::logic_error);
}

TEST(Pool, GroupReusableAfterWait) {
  WorkerPool pool(2);
  std::atomic<int> count{0};
  TaskGroup group(pool);
  group.spawn([&] { ++count; });
  group.wait();
  group.spawn([&] { ++count; });
  group.spawn([&] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(Pool, ManySmallGroupsStress) {
  WorkerPool pool(4);
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    TaskGroup group(pool);
    for (int i = 0; i < 20; ++i) {
      group.spawn([&total] { total.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
  }
  EXPECT_EQ(total.load(), 4000);
}

TEST(Pool, StealsHappenUnderImbalance) {
  // One external submitter, several workers: work must be distributed, so
  // with enough tasks at least one steal (or injection pickup) occurs and
  // all tasks complete.
  WorkerPool pool(4);
  std::atomic<int> done{0};
  TaskGroup group(pool);
  for (int i = 0; i < 500; ++i) {
    group.spawn([&done] {
      volatile int spin = 0;
      for (int s = 0; s < 200; ++s) spin = spin + s;
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  group.wait();
  EXPECT_EQ(done.load(), 500);
}

}  // namespace
}  // namespace rla
