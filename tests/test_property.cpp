// Property-based tests of the layout functions: randomized invariants and
// quantitative locality comparisons between canonical and recursive layouts.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "layout/curve.hpp"
#include "layout/tiled_layout.hpp"
#include "test_common.hpp"
#include "util/rng.hpp"

namespace rla {
namespace {

class CurveProperty : public ::testing::TestWithParam<Curve> {};

TEST_P(CurveProperty, RandomRoundTripsAtRandomDepths) {
  const Curve c = GetParam();
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    const int d = 1 + static_cast<int>(rng.next_below(10));
    const auto i = static_cast<std::uint32_t>(rng.next_below(1u << d));
    const auto j = static_cast<std::uint32_t>(rng.next_below(1u << d));
    const std::uint64_t s = s_index(c, i, j, d);
    ASSERT_LT(s, std::uint64_t{1} << (2 * d));
    const TileCoord back = s_inverse(c, s, d);
    ASSERT_EQ(back.i, i);
    ASSERT_EQ(back.j, j);
  }
}

TEST_P(CurveProperty, PigeonholeNeighbourAdjacency) {
  // Paper §3.4: at most two of the four cardinal neighbours of (i,j) can be
  // adjacent in S — recursive layouts dilate too, just at multiple scales.
  const Curve c = GetParam();
  if (!is_recursive(c)) return;
  const int d = 5;
  const std::uint32_t n = 1u << d;
  for (std::uint32_t i = 1; i + 1 < n; ++i) {
    for (std::uint32_t j = 1; j + 1 < n; ++j) {
      const std::uint64_t s = s_index(c, i, j, d);
      int adjacent = 0;
      const std::uint64_t neighbours[] = {
          s_index(c, i - 1, j, d), s_index(c, i + 1, j, d),
          s_index(c, i, j - 1, d), s_index(c, i, j + 1, d)};
      for (std::uint64_t ns : neighbours) {
        const std::uint64_t diff = ns > s ? ns - s : s - ns;
        if (diff == 1) ++adjacent;
      }
      ASSERT_LE(adjacent, 2);
    }
  }
}

TEST_P(CurveProperty, AllBlockAlignmentsAreContiguous) {
  // Not just quadrants: every aligned 2^l-block is contiguous along the
  // curve (this is what makes recursion-embedded addressing possible at
  // every level).
  const Curve c = GetParam();
  if (!is_recursive(c)) return;
  const int d = 5;
  for (int l = 1; l < d; ++l) {
    const std::uint32_t bs = 1u << l;
    const std::uint32_t blocks = 1u << (d - l);
    Xoshiro256 rng(1234);
    for (int trial = 0; trial < 20; ++trial) {
      const auto bi = static_cast<std::uint32_t>(rng.next_below(blocks));
      const auto bj = static_cast<std::uint32_t>(rng.next_below(blocks));
      std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
      for (std::uint32_t u = 0; u < bs; ++u) {
        for (std::uint32_t v = 0; v < bs; ++v) {
          const std::uint64_t s = s_index(c, bi * bs + u, bj * bs + v, d);
          lo = std::min(lo, s);
          hi = std::max(hi, s);
        }
      }
      ASSERT_EQ(hi - lo + 1, std::uint64_t{bs} * bs);
      ASSERT_EQ(lo % (std::uint64_t{bs} * bs), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCurves, CurveProperty, ::testing::ValuesIn(kAllCurves),
                         [](const ::testing::TestParamInfo<Curve>& info) {
                           return rla::testing::sanitize(curve_name(info.param));
                         });

double neighbour_within_fraction(Curve curve, std::uint32_t n, std::uint32_t tile,
                                 std::uint64_t radius) {
  // Fraction of cardinal-neighbour pairs whose addresses are within
  // `radius` elements — the useful-locality metric behind Fig. 2: recursive
  // layouts dilate too, but only at tile-crossing scales, so most
  // neighbours stay close.
  const std::uint32_t side = n / tile;
  const int depth = static_cast<int>(std::log2(side));
  const TileGeometry g = make_geometry(n, n, depth, curve);
  std::uint64_t close = 0, count = 0;
  for (std::uint32_t i = 0; i + 1 < n; i += 3) {
    for (std::uint32_t j = 0; j + 1 < n; j += 3) {
      const std::uint64_t a = g.address(i, j);
      for (const std::uint64_t b : {g.address(i + 1, j), g.address(i, j + 1)}) {
        const std::uint64_t d = b > a ? b - a : a - b;
        close += (d <= radius) ? 1 : 0;
        ++count;
      }
    }
  }
  return static_cast<double>(close) / static_cast<double>(count);
}

TEST(LayoutLocality, RecursiveLayoutsKeepNeighboursWithinAPage) {
  // Quantitative version of Fig. 2's motivation. For n = 1024 column-major,
  // every column-axis neighbour is 1024 elements (8 KB) away — outside a
  // 4 KB page — so only half of all neighbour pairs are page-local. Tiled
  // recursive layouts keep the large majority page-local.
  const std::uint32_t n = 1024, tile = 16;
  const std::uint64_t page_elems = 512;  // 4 KB / 8 B
  const double canonical = 0.5;
  for (Curve c : kRecursiveCurves) {
    const double frac = neighbour_within_fraction(c, n, tile, page_elems);
    EXPECT_GT(frac, canonical + 0.25) << curve_name(c);
  }
}

TEST(LayoutLocality, HilbertBeatsZMortonOnCurveJumps) {
  // Successive curve positions: Hilbert never jumps (adjacency), Z-Morton
  // jumps at every power-of-two boundary. Measure mean grid distance
  // between consecutive curve positions.
  const int d = 6;
  const std::uint64_t count = std::uint64_t{1} << (2 * d);
  auto mean_jump = [&](Curve c) {
    double total = 0.0;
    TileCoord prev = s_inverse(c, 0, d);
    for (std::uint64_t s = 1; s < count; ++s) {
      const TileCoord cur = s_inverse(c, s, d);
      total += std::abs(static_cast<double>(cur.i) - prev.i) +
               std::abs(static_cast<double>(cur.j) - prev.j);
      prev = cur;
    }
    return total / static_cast<double>(count - 1);
  };
  const double hilbert = mean_jump(Curve::Hilbert);
  const double z = mean_jump(Curve::ZMorton);
  const double gray = mean_jump(Curve::GrayMorton);
  EXPECT_DOUBLE_EQ(hilbert, 1.0);
  EXPECT_GT(z, hilbert);
  EXPECT_GT(gray, hilbert);
  EXPECT_LT(gray, z);  // two orientations smooth some of the jumps
}

TEST(LayoutProperty, TiledAddressRoundTripRandomGeometries) {
  Xoshiro256 rng(321);
  for (int trial = 0; trial < 40; ++trial) {
    const Curve c = kRecursiveCurves[rng.next_below(5)];
    const int depth = 1 + static_cast<int>(rng.next_below(4));
    const auto rows = static_cast<std::uint32_t>(8 + rng.next_below(200));
    const auto cols = static_cast<std::uint32_t>(8 + rng.next_below(200));
    const TileGeometry g = make_geometry(rows, cols, depth, c);
    // Random sample of logical coordinates; addresses must be unique and in
    // range (full bijectivity is covered by the smaller exhaustive test).
    std::set<std::uint64_t> seen;
    for (int probe = 0; probe < 100; ++probe) {
      const auto i = static_cast<std::uint32_t>(rng.next_below(g.padded_rows()));
      const auto j = static_cast<std::uint32_t>(rng.next_below(g.padded_cols()));
      const std::uint64_t a = g.address(i, j);
      ASSERT_LT(a, g.total_elems());
      const auto key = (static_cast<std::uint64_t>(i) << 32) | j;
      if (seen.insert(key).second) continue;
    }
  }
}

}  // namespace
}  // namespace rla
