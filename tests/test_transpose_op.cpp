// Tests of in-layout transposition (core/transpose).

#include <gtest/gtest.h>

#include "core/transpose.hpp"
#include "layout/convert.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

class TransposeOpTest : public ::testing::TestWithParam<Curve> {};

TEST_P(TransposeOpTest, SquareTiles) {
  const Curve curve = GetParam();
  const TileGeometry g = make_geometry(40, 40, 2, curve);
  Matrix src = rla::testing::random_matrix(40, 40, 1);
  TiledMatrix ts(g), td(transposed_geometry(g));
  canonical_to_tiled(src.data(), src.ld(), false, 1.0, g, ts.data());
  transpose_tiled(ts, td);
  for (std::uint32_t i = 0; i < 40; ++i) {
    for (std::uint32_t j = 0; j < 40; ++j) {
      ASSERT_EQ(td.at(i, j), src(j, i)) << curve_name(curve);
    }
  }
}

TEST_P(TransposeOpTest, RectangularTilesWithPadding) {
  const Curve curve = GetParam();
  const TileGeometry g = make_geometry(36, 20, 2, curve);  // 9x5 tiles
  Matrix src = rla::testing::random_matrix(36, 20, 2);
  TiledMatrix ts(g), td(transposed_geometry(g));
  canonical_to_tiled(src.data(), src.ld(), false, 1.0, g, ts.data());
  transpose_tiled(ts, td);
  EXPECT_EQ(td.geom().rows, 20u);
  EXPECT_EQ(td.geom().cols, 36u);
  EXPECT_EQ(td.geom().tile_rows, g.tile_cols);
  for (std::uint32_t i = 0; i < 20; ++i) {
    for (std::uint32_t j = 0; j < 36; ++j) {
      ASSERT_EQ(td.at(i, j), src(j, i)) << curve_name(curve);
    }
  }
}

TEST_P(TransposeOpTest, DoubleTransposeIsIdentity) {
  const Curve curve = GetParam();
  const TileGeometry g = make_geometry(24, 56, 3, curve);
  Matrix src = rla::testing::random_matrix(24, 56, 3);
  TiledMatrix a(g), b(transposed_geometry(g)), c(g);
  canonical_to_tiled(src.data(), src.ld(), false, 1.0, g, a.data());
  transpose_tiled(a, b);
  transpose_tiled(b, c);
  for (std::uint64_t e = 0; e < a.size(); ++e) {
    ASSERT_EQ(a.data()[e], c.data()[e]);
  }
}

TEST_P(TransposeOpTest, ParallelMatchesSerial) {
  const Curve curve = GetParam();
  const TileGeometry g = make_geometry(64, 64, 3, curve);
  Matrix src = rla::testing::random_matrix(64, 64, 4);
  TiledMatrix ts(g), serial(transposed_geometry(g)),
      parallel(transposed_geometry(g));
  canonical_to_tiled(src.data(), src.ld(), false, 1.0, g, ts.data());
  transpose_tiled(ts, serial);
  WorkerPool pool(4);
  transpose_tiled(ts, parallel, &pool);
  for (std::uint64_t e = 0; e < serial.size(); ++e) {
    ASSERT_EQ(serial.data()[e], parallel.data()[e]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRecursive, TransposeOpTest,
                         ::testing::ValuesIn(kRecursiveCurves),
                         [](const ::testing::TestParamInfo<Curve>& info) {
                           return rla::testing::sanitize(curve_name(info.param));
                         });

TEST(TransposeOp, RejectsMismatchedGeometry) {
  const TileGeometry g = make_geometry(32, 32, 2, Curve::ZMorton);
  TiledMatrix a(g), wrong(g);  // not transposed shape (here square but same
                               // object is fine); use different depth to fail
  TileGeometry bad = transposed_geometry(g);
  bad.depth = 1;
  bad.tile_rows *= 2;
  bad.tile_cols *= 2;
  TiledMatrix b(bad);
  EXPECT_THROW(transpose_tiled(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace rla
