// Tests of the address-trace generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "trace/access_logger.hpp"

namespace rla::trace {
namespace {

TEST(Trace, CanonicalTraceLengthMatchesFormula) {
  // Per (i, j, l) iteration: one A read and one B read; per leaf visit of
  // (i, j) — n/leaf visits each — one C read and one C write.
  // Total = 2n³ + 2n²·(n/leaf).
  const std::uint32_t n = 16, leaf = 4;
  const auto refs = standard_canonical_trace(n, leaf);
  const std::uint64_t n3 = std::uint64_t{n} * n * n;
  EXPECT_EQ(refs.size(), 2 * n3 + 2 * std::uint64_t{n} * n * (n / leaf));
}

TEST(Trace, TiledTraceLengthMatchesCanonical) {
  const std::uint32_t n = 16;
  const auto canonical = standard_canonical_trace(n, 4);
  const auto tiled = standard_tiled_trace(n, 4, Curve::ZMorton);
  EXPECT_EQ(canonical.size(), tiled.size());
}

TEST(Trace, AddressesStayInMatrixRegions) {
  const std::uint32_t n = 16;
  const TraceBases bases;
  const std::uint64_t bytes = std::uint64_t{n} * n * sizeof(double);
  for (const auto& ref : standard_canonical_trace(n, 4, bases)) {
    const bool in_a = ref.addr >= bases.a && ref.addr < bases.a + bytes;
    const bool in_b = ref.addr >= bases.b && ref.addr < bases.b + bytes;
    const bool in_c = ref.addr >= bases.c && ref.addr < bases.c + bytes;
    ASSERT_TRUE(in_a || in_b || in_c);
    if (ref.write) ASSERT_TRUE(in_c);  // only C is written
  }
}

TEST(Trace, SameAccessMultisetAcrossLayouts) {
  // The tiled walk touches each logical element the same number of times as
  // the canonical walk — only the address mapping differs. Compare C-write
  // counts: each C element is written exactly (n/leaf)... once per leaf
  // (i,j) visit; totals must agree between layouts.
  const std::uint32_t n = 16;
  auto count_writes = [](const std::vector<sim::MemRef>& refs) {
    std::map<std::uint64_t, int> writes;
    for (const auto& r : refs) {
      if (r.write) ++writes[r.addr];
    }
    std::vector<int> counts;
    counts.reserve(writes.size());
    for (const auto& [addr, cnt] : writes) counts.push_back(cnt);
    std::sort(counts.begin(), counts.end());
    return counts;
  };
  const auto canonical = count_writes(standard_canonical_trace(n, 4));
  for (Curve c : kRecursiveCurves) {
    const auto tiled = count_writes(standard_tiled_trace(n, 4, c));
    ASSERT_EQ(canonical, tiled) << curve_name(c);
  }
}

TEST(Trace, TiledTraceValidatesShape) {
  EXPECT_THROW(standard_tiled_trace(15, 4, Curve::ZMorton), std::invalid_argument);
  EXPECT_THROW(standard_tiled_trace(16, 0, Curve::ZMorton), std::invalid_argument);
  EXPECT_THROW(standard_tiled_trace(24, 4, Curve::ZMorton), std::invalid_argument);
}

TEST(Trace, QuadrantParallelTraceCoversFourCores) {
  const auto refs = quadrant_parallel_trace(16, 4, Curve::ZMorton);
  ASSERT_FALSE(refs.empty());
  std::array<std::uint64_t, 4> per_core{};
  for (const auto& r : refs) {
    ASSERT_LT(r.core, 4u);
    ++per_core[r.core];
  }
  // The four quadrant products are identical in shape => equal stream sizes.
  EXPECT_EQ(per_core[0], per_core[1]);
  EXPECT_EQ(per_core[1], per_core[2]);
  EXPECT_EQ(per_core[2], per_core[3]);
}

TEST(Trace, QuadrantParallelInterleavesRoundRobin) {
  const auto refs = quadrant_parallel_trace(8, 2, Curve::ZMorton);
  // First four events are one per core.
  ASSERT_GE(refs.size(), 4u);
  EXPECT_EQ(refs[0].core, 0u);
  EXPECT_EQ(refs[1].core, 1u);
  EXPECT_EQ(refs[2].core, 2u);
  EXPECT_EQ(refs[3].core, 3u);
}

TEST(Trace, QuadrantCoresWriteDisjointCRegions) {
  const std::uint32_t n = 16;
  const TraceBases bases;
  const auto refs = quadrant_parallel_trace(n, 4, Curve::ZMorton, bases);
  std::map<std::uint64_t, std::uint32_t> writer;
  for (const auto& r : refs) {
    if (!r.write) continue;
    auto [it, inserted] = writer.emplace(r.addr, r.core);
    if (!inserted) ASSERT_EQ(it->second, r.core) << "two cores wrote one element";
  }
  EXPECT_EQ(writer.size(), std::uint64_t{n} * n);  // every C element written
}

TEST(Trace, CanonicalWorksForParallelTraceToo) {
  const auto refs = quadrant_parallel_trace(16, 4, Curve::ColMajor);
  EXPECT_FALSE(refs.empty());
}

}  // namespace
}  // namespace rla::trace
