// End-to-end property sweep: random gemm configurations across the full
// public surface, checked against the reference oracle. This is the
// everything-connected test: layouts × algorithms × transposes × scalars ×
// shapes × threading, chosen pseudo-randomly but deterministically.

#include <gtest/gtest.h>

#include "core/gemm.hpp"
#include "test_common.hpp"
#include "util/rng.hpp"

namespace rla {
namespace {

constexpr Curve kLayouts[] = {Curve::ColMajor,   Curve::UMorton, Curve::XMorton,
                              Curve::ZMorton,    Curve::GrayMorton,
                              Curve::Hilbert};
constexpr Algorithm kAlgs[] = {Algorithm::Standard, Algorithm::Strassen,
                               Algorithm::Winograd};

struct RandomCase {
  std::uint32_t m, n, k;
  double alpha, beta;
  Op op_a, op_b;
  Curve layout;
  Algorithm alg;
  unsigned threads;
  std::uint64_t seed;
};

RandomCase draw(Xoshiro256& rng) {
  RandomCase c;
  c.m = 1 + static_cast<std::uint32_t>(rng.next_below(130));
  c.n = 1 + static_cast<std::uint32_t>(rng.next_below(130));
  c.k = 1 + static_cast<std::uint32_t>(rng.next_below(130));
  const double alphas[] = {1.0, -1.0, 0.5, 2.0, 0.0};
  const double betas[] = {0.0, 1.0, -0.5, 3.0};
  c.alpha = alphas[rng.next_below(5)];
  c.beta = betas[rng.next_below(4)];
  c.op_a = rng.next_below(2) != 0u ? Op::Transpose : Op::None;
  c.op_b = rng.next_below(2) != 0u ? Op::Transpose : Op::None;
  c.layout = kLayouts[rng.next_below(6)];
  c.alg = kAlgs[rng.next_below(3)];
  c.threads = static_cast<unsigned>(rng.next_below(3)) * 2;  // 0, 2 or 4
  c.seed = rng.next_u64();
  return c;
}

TEST(Integration, RandomConfigurationSweep) {
  Xoshiro256 rng(20260704);
  for (int trial = 0; trial < 60; ++trial) {
    const RandomCase c = draw(rng);
    GemmConfig cfg;
    cfg.layout = c.layout;
    cfg.algorithm = c.alg;
    cfg.threads = c.threads;
    const double err = rla::testing::gemm_vs_reference(
        c.m, c.n, c.k, c.alpha, c.op_a, c.op_b, c.beta, cfg, c.seed);
    ASSERT_LT(err, 1e-9) << "trial " << trial << ": " << c.m << "x" << c.n << "x"
                         << c.k << " alpha=" << c.alpha << " beta=" << c.beta
                         << " opA=" << static_cast<int>(c.op_a)
                         << " opB=" << static_cast<int>(c.op_b) << " "
                         << curve_name(c.layout) << "/" << algorithm_name(c.alg)
                         << " threads=" << c.threads;
  }
}

TEST(Integration, ExtremeAspectRatioSweep) {
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 12; ++trial) {
    const std::uint32_t big = 200 + static_cast<std::uint32_t>(rng.next_below(300));
    const std::uint32_t small = 1 + static_cast<std::uint32_t>(rng.next_below(24));
    GemmConfig cfg;
    cfg.layout = kLayouts[1 + rng.next_below(5)];  // recursive layouts only
    cfg.algorithm = kAlgs[rng.next_below(3)];
    const int shape = static_cast<int>(rng.next_below(3));
    const std::uint32_t m = shape == 0 ? big : small;
    const std::uint32_t n = shape == 1 ? big : small;
    const std::uint32_t k = shape == 2 ? big : small;
    const double err = rla::testing::gemm_vs_reference(m, n, k, 1.0, Op::None,
                                                       Op::None, 1.0, cfg,
                                                       rng.next_u64());
    ASSERT_LT(err, 1e-9) << m << "x" << n << "x" << k << " "
                         << curve_name(cfg.layout) << "/"
                         << algorithm_name(cfg.algorithm);
  }
}

TEST(Integration, RepeatedCallsSamePoolAreStable) {
  WorkerPool pool(4);
  GemmConfig cfg;
  cfg.layout = Curve::Hilbert;
  cfg.algorithm = Algorithm::Winograd;
  cfg.pool = &pool;
  Matrix a = rla::testing::random_matrix(96, 96, 1);
  Matrix b = rla::testing::random_matrix(96, 96, 2);
  Matrix first(96, 96);
  multiply(first, a, b, cfg);
  for (int round = 0; round < 4; ++round) {
    Matrix c(96, 96);
    multiply(c, a, b, cfg);
    ASSERT_EQ(max_abs_diff(first.view(), c.view()), 0.0) << round;
  }
}

TEST(Integration, MixedLayoutsAgreeWithEachOther) {
  // All layouts compute the same function; cross-check them pairwise at a
  // padded, awkward size.
  const std::uint32_t m = 83, n = 97, k = 71;
  Matrix a = rla::testing::random_matrix(m, k, 5);
  Matrix b = rla::testing::random_matrix(k, n, 6);
  Matrix baseline(m, n);
  GemmConfig cfg;
  cfg.layout = Curve::ColMajor;
  multiply(baseline, a, b, cfg);
  for (Curve layout : {Curve::UMorton, Curve::XMorton, Curve::ZMorton,
                       Curve::GrayMorton, Curve::Hilbert}) {
    Matrix c(m, n);
    cfg.layout = layout;
    multiply(c, a, b, cfg);
    ASSERT_LT(max_abs_diff(baseline.view(), c.view()), 1e-10) << curve_name(layout);
  }
}

}  // namespace
}  // namespace rla
