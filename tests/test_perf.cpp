// Tests of the hardware performance-counter subsystem (src/obs/perf):
// sample arithmetic, the one-armed-session protocol, graceful degradation
// when perf_event_open is unavailable (forced via fault injection, so the
// path is exercised even on hosts with a working PMU), profile plumbing and
// JSON round-trip, trace/metrics export, and the sim-side cross-validation
// invariant the sim_vs_hw tool is built on.
//
// Counter *values* are host-dependent (containers and VMs routinely expose
// no PMU at all), so assertions about live hardware numbers are conditional
// on hw_measured; the degradation contract is asserted unconditionally.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "core/gemm.hpp"
#include "obs/perf.hpp"
#include "robust/fault.hpp"
#include "test_common.hpp"
#include "trace/access_logger.hpp"

namespace rla {
namespace {

using rla::testing::gemm_tolerance;
using rla::testing::gemm_vs_reference;

bool trail_contains(const GemmProfile& profile, std::string_view needle) {
  for (const std::string& step : profile.degradation_trail) {
    if (step.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

GemmProfile run_profiled(std::uint32_t n, GemmConfig cfg) {
  Matrix a = testing::random_matrix(n, n, 11), b = testing::random_matrix(n, n, 12);
  Matrix c(n, n);
  c.zero();
  GemmProfile profile;
  gemm(n, n, n, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
       0.0, c.data(), c.ld(), cfg, &profile);
  return profile;
}

// ---------------------------------------------------------------------------
// Sample arithmetic (pure, host-independent).

TEST(PerfSample, DeltaIntersectsMasksAndSaturates) {
  obs::perf::Sample begin{};
  obs::perf::Sample end{};
  begin.mask = (1u << obs::perf::kCycles) | (1u << obs::perf::kTaskClock);
  begin.value[obs::perf::kCycles] = 100;
  begin.value[obs::perf::kTaskClock] = 50;
  begin.scale = 1.0;
  end.mask = (1u << obs::perf::kCycles) | (1u << obs::perf::kInstructions);
  end.value[obs::perf::kCycles] = 150;
  end.value[obs::perf::kInstructions] = 999;
  end.scale = 0.5;

  const obs::perf::Sample d = end.delta_since(begin);
  // Only events counted on BOTH sides survive into the delta.
  EXPECT_EQ(d.mask, 1u << obs::perf::kCycles);
  EXPECT_TRUE(d.has(obs::perf::kCycles));
  EXPECT_FALSE(d.has(obs::perf::kInstructions));
  EXPECT_FALSE(d.has(obs::perf::kTaskClock));
  EXPECT_EQ(d.value[obs::perf::kCycles], 50u);
  // The delta's confidence is the worse of the two scales.
  EXPECT_DOUBLE_EQ(d.scale, 0.5);

  // Multiplexing rescaling can make a later read smaller; deltas saturate
  // at zero instead of wrapping to 2^64 - epsilon.
  obs::perf::Sample smaller = begin;
  smaller.value[obs::perf::kCycles] = 10;
  const obs::perf::Sample sat = smaller.delta_since(begin);
  EXPECT_EQ(sat.value[obs::perf::kCycles], 0u);
}

TEST(PerfSample, AccumulateUnionsMasksAndAdds) {
  obs::perf::Sample total{};
  obs::perf::Sample a{};
  a.mask = 1u << obs::perf::kCycles;
  a.value[obs::perf::kCycles] = 7;
  a.scale = 0.9;
  obs::perf::Sample b{};
  b.mask = 1u << obs::perf::kL1dReadMisses;
  b.value[obs::perf::kL1dReadMisses] = 3;
  b.scale = 0.4;

  total.mask = 0;
  total.accumulate(a);
  total.accumulate(b);
  EXPECT_EQ(total.mask,
            (1u << obs::perf::kCycles) | (1u << obs::perf::kL1dReadMisses));
  EXPECT_EQ(total.value[obs::perf::kCycles], 7u);
  EXPECT_EQ(total.value[obs::perf::kL1dReadMisses], 3u);
  EXPECT_DOUBLE_EQ(total.scale, 0.4);
}

TEST(PerfEvents, NamesAreStableJsonKeys) {
  // These strings are JSON keys in profiles, trace args and metrics;
  // renaming one silently breaks every downstream consumer.
  EXPECT_STREQ(obs::perf::event_name(obs::perf::kCycles), "cycles");
  EXPECT_STREQ(obs::perf::event_name(obs::perf::kInstructions), "instructions");
  EXPECT_STREQ(obs::perf::event_name(obs::perf::kL1dReadMisses),
               "l1d_read_misses");
  EXPECT_STREQ(obs::perf::event_name(obs::perf::kLlcMisses), "llc_misses");
  EXPECT_STREQ(obs::perf::event_name(obs::perf::kDtlbMisses), "dtlb_misses");
  EXPECT_STREQ(obs::perf::event_name(obs::perf::kTaskClock), "task_clock_ns");
}

// ---------------------------------------------------------------------------
// Graceful degradation: fault injection forces the perf-unavailable path on
// every host, PMU or not.

TEST(PerfUnavailable, FaultInjectedOpenDegradesAndGemmStaysCorrect) {
  GemmConfig cfg;
  cfg.threads = 2;
  cfg.hw_counters = true;
  cfg.fault_spec = "perf.open:p=1";  // every perf_event_open fails
  GemmProfile profile;

  const std::uint32_t n = 96;
  Matrix a = testing::random_matrix(n, n, 21), b = testing::random_matrix(n, n, 22);
  Matrix c(n, n);
  c.zero();
  gemm(n, n, n, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
       0.0, c.data(), c.ld(), cfg, &profile);

  // The multiply itself is unharmed.
  Matrix c_ref(n, n);
  c_ref.zero();
  reference_gemm(n, n, n, 1.0, a.data(), a.ld(), false, b.data(), b.ld(), false,
                 0.0, c_ref.data(), c_ref.ld());
  EXPECT_LE(max_abs_diff(c.view(), c_ref.view()), gemm_tolerance(n, n, n));

  // Counting never happened and says so.
  EXPECT_FALSE(profile.hw_measured);
  EXPECT_TRUE(profile.hw_events.empty());
  EXPECT_EQ(profile.hw_total.cycles, 0u);
  EXPECT_TRUE(profile.hw_phases.empty());
  EXPECT_TRUE(trail_contains(profile, "perf:unavailable"));
  EXPECT_TRUE(trail_contains(profile, "fault-injected"));

  // The degraded profile round-trips exactly.
  const std::string once = profile.to_json();
  GemmProfile parsed;
  ASSERT_TRUE(GemmProfile::from_json(once, parsed));
  EXPECT_EQ(parsed.to_json(), once);
  EXPECT_FALSE(parsed.hw_measured);
  EXPECT_TRUE(trail_contains(parsed, "perf:unavailable"));
}

TEST(PerfUnavailable, BusySessionDegradesConcurrentCall) {
  // Hold the process-wide session slot, as a concurrent counted gemm would.
  obs::perf::Session outer;
  ASSERT_TRUE(outer.try_attach());

  GemmConfig cfg;
  cfg.hw_counters = true;
  const GemmProfile profile = run_profiled(64, cfg);
  EXPECT_FALSE(profile.hw_measured);
  EXPECT_TRUE(trail_contains(profile, "perf:busy"));
  outer.detach();
}

TEST(PerfUnavailable, AvailableFlagSafeToReadConcurrently) {
  // Regression: Session::available_ was a plain bool that try_attach wrote
  // *after* publishing the session through the process-wide slot, so a
  // concurrent reader reaching the session via the slot raced the write.
  // It is now an atomic whose release store pairs with the acquire load in
  // available(); hammer the publication from readers across attach/detach
  // cycles (under TSan this is the reproducer, elsewhere a liveness smoke).
  obs::perf::Session session;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      obs::perf::Sample snap;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)session.available();
        (void)obs::perf::phase_snapshot(snap);
      }
    });
  }
  bool last_published = session.available();
  for (int i = 0; i < 200; ++i) {
    if (session.try_attach()) {
      last_published = session.available();
      session.detach();
    }
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  // detach() keeps the flag at its published value so per-thread totals
  // stay readable; the last attach decided it (either way on a PMU-less
  // host, which is why this is not a hard-coded expectation).
  EXPECT_EQ(session.available(), last_published);
}

// ---------------------------------------------------------------------------
// Live counting (conditional on the host) and the env-var arming path.

TEST(PerfCounting, HwCountersFillProfileTraceAndMetricsOrDegrade) {
  const std::string trace_path =
      ::testing::TempDir() + "/perf_counted_trace.json";
  GemmConfig cfg;
  cfg.threads = 2;
  cfg.hw_counters = true;
  cfg.trace_path = trace_path;
  const GemmProfile profile = run_profiled(128, cfg);

  if (!profile.hw_measured) {
    // No usable counters on this host: the contract is a recorded reason,
    // not a failure.
    EXPECT_TRUE(trail_contains(profile, "perf:unavailable") ||
                trail_contains(profile, "perf:busy"));
    return;
  }

  // Counting implies measuring (the counters ride on the phase spans).
  EXPECT_TRUE(profile.measured);
  ASSERT_FALSE(profile.hw_events.empty());
  EXPECT_GT(profile.hw_scale, 0.0);
  EXPECT_LE(profile.hw_scale, 1.0);

  // Whatever counted overall must have a nonzero total, and the per-phase
  // breakdown must include the compute phase.
  std::uint64_t total = profile.hw_total.cycles + profile.hw_total.instructions +
                        profile.hw_total.l1d_read_misses +
                        profile.hw_total.llc_misses + profile.hw_total.dtlb_misses +
                        profile.hw_total.task_clock_ns;
  EXPECT_GT(total, 0u);
  bool saw_compute = false;
  for (const auto& [phase, hw] : profile.hw_phases) {
    if (phase == "compute") {
      saw_compute = true;
      EXPECT_GT(hw.cycles + hw.instructions + hw.l1d_read_misses +
                    hw.llc_misses + hw.dtlb_misses + hw.task_clock_ns,
                0u);
    }
  }
  EXPECT_TRUE(saw_compute);

  // The Chrome trace carries the counters twice: as args on the phase spans
  // and as perf.* counters in the metrics snapshot.
  const std::string trace = slurp(trace_path);
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(trace.find("\"" + profile.hw_events.front() + "\":"),
            std::string::npos);
  EXPECT_NE(trace.find("perf.total." + profile.hw_events.front()),
            std::string::npos);

  // And the profile JSON round-trips exactly with live values.
  const std::string once = profile.to_json();
  GemmProfile parsed;
  ASSERT_TRUE(GemmProfile::from_json(once, parsed));
  EXPECT_EQ(parsed.to_json(), once);
  std::remove(trace_path.c_str());
}

TEST(PerfCounting, RlaPerfEnvArmsCounting) {
  ::setenv("RLA_PERF", "1", 1);
  GemmConfig cfg;  // hw_counters deliberately left false
  const GemmProfile profile = run_profiled(64, cfg);
  ::unsetenv("RLA_PERF");
  // Armed either way: the run counted, or it recorded why it could not.
  EXPECT_TRUE(profile.hw_measured ||
              trail_contains(profile, "perf:unavailable") ||
              trail_contains(profile, "perf:busy"));
}

TEST(PerfCounting, OffByDefaultLeavesProfileEmpty) {
  GemmConfig cfg;
  cfg.measure = true;
  const GemmProfile profile = run_profiled(64, cfg);
  EXPECT_FALSE(profile.hw_measured);
  EXPECT_TRUE(profile.hw_events.empty());
  EXPECT_TRUE(profile.hw_phases.empty());
  EXPECT_FALSE(trail_contains(profile, "perf:"));
}

// ---------------------------------------------------------------------------
// Sim side of the cross-validation: the modeled hierarchy must reproduce
// the paper's layout ordering at a clean (tile * 2^d) point. This is the
// invariant sim_vs_hw compares against measured counters.

TEST(SimVsHw, SimulatorPredictsRecursiveLayoutWinsOverCanonical) {
  constexpr std::uint32_t kN = 128, kTile = 16;
  const auto run = [&](bool canonical) {
    const std::vector<sim::MemRef> trace =
        canonical ? trace::standard_canonical_trace(kN, kTile)
                  : trace::standard_tiled_trace(kN, kTile, Curve::ZMorton);
    sim::MemoryHierarchy hier{sim::HierarchyConfig{}};
    for (const sim::MemRef& ref : trace) hier.access(ref);
    return hier;
  };
  const sim::MemoryHierarchy col = run(true);
  const sim::MemoryHierarchy zm = run(false);

  // Same recursion, same leaf loop: the element reference count agrees to
  // within the padding the tiled layout introduces (none at 128 = 16·2^3).
  EXPECT_EQ(col.l1().stats().accesses(), zm.l1().stats().accesses());
  // The recursive layout's contiguous tiles cannot do worse on L1 and win
  // clearly on TLB reach — the Fig. 5/6 mechanism.
  EXPECT_LE(zm.l1().stats().misses, col.l1().stats().misses);
  EXPECT_LT(static_cast<double>(zm.tlb().stats().misses),
            0.75 * static_cast<double>(col.tlb().stats().misses));
}

}  // namespace
}  // namespace rla
