// Tests of the Chase–Lev work-stealing deque.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "parallel/chase_lev_deque.hpp"

namespace rla {
namespace {

TEST(Deque, OwnerPushPopIsLifo) {
  int values[4] = {1, 2, 3, 4};
  ChaseLevDeque<int*> dq;
  for (int& v : values) dq.push(&v);
  EXPECT_EQ(dq.pop(), &values[3]);
  EXPECT_EQ(dq.pop(), &values[2]);
  EXPECT_EQ(dq.pop(), &values[1]);
  EXPECT_EQ(dq.pop(), &values[0]);
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(Deque, StealIsFifo) {
  int values[4] = {1, 2, 3, 4};
  ChaseLevDeque<int*> dq;
  for (int& v : values) dq.push(&v);
  EXPECT_EQ(dq.steal(), &values[0]);
  EXPECT_EQ(dq.steal(), &values[1]);
  EXPECT_EQ(dq.pop(), &values[3]);
  EXPECT_EQ(dq.steal(), &values[2]);
  EXPECT_EQ(dq.steal(), nullptr);
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(Deque, GrowsPastInitialCapacity) {
  ChaseLevDeque<int*> dq(4);
  std::vector<int> values(1000);
  for (int& v : values) dq.push(&v);
  EXPECT_EQ(dq.size_estimate(), 1000);
  for (int i = 999; i >= 0; --i) EXPECT_EQ(dq.pop(), &values[static_cast<std::size_t>(i)]);
}

TEST(Deque, EmptyBehaviour) {
  ChaseLevDeque<int*> dq;
  EXPECT_EQ(dq.pop(), nullptr);
  EXPECT_EQ(dq.steal(), nullptr);
  EXPECT_EQ(dq.size_estimate(), 0);
  int v = 1;
  dq.push(&v);
  EXPECT_EQ(dq.pop(), &v);
  EXPECT_EQ(dq.pop(), nullptr);  // empty again after drain
}

TEST(Deque, ConcurrentStealersConserveItems) {
  // One owner pushes and pops; several thieves steal. Every item must be
  // received exactly once across all parties.
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  std::vector<int> values(kItems);
  std::iota(values.begin(), values.end(), 0);

  ChaseLevDeque<int*> dq;
  std::atomic<bool> done{false};
  std::atomic<std::int64_t> stolen_sum{0};
  std::atomic<std::int64_t> stolen_count{0};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::int64_t local_sum = 0, local_count = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (int* item = dq.steal()) {
          local_sum += *item;
          ++local_count;
        }
      }
      while (int* item = dq.steal()) {
        local_sum += *item;
        ++local_count;
      }
      stolen_sum.fetch_add(local_sum);
      stolen_count.fetch_add(local_count);
    });
  }

  std::int64_t own_sum = 0, own_count = 0;
  for (int i = 0; i < kItems; ++i) {
    dq.push(&values[static_cast<std::size_t>(i)]);
    if (i % 3 == 0) {
      if (int* item = dq.pop()) {
        own_sum += *item;
        ++own_count;
      }
    }
  }
  while (int* item = dq.pop()) {
    own_sum += *item;
    ++own_count;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(own_count + stolen_count.load(), kItems);
  const std::int64_t expected_sum =
      static_cast<std::int64_t>(kItems) * (kItems - 1) / 2;
  EXPECT_EQ(own_sum + stolen_sum.load(), expected_sum);
}

}  // namespace
}  // namespace rla
