// Tests of the Frens–Wise zero-block flags and their effect on the
// standard recursion (paper §4's design contrast).

#include <gtest/gtest.h>

#include "core/gemm.hpp"
#include "core/zero_tree.hpp"
#include "layout/convert.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

using rla::testing::random_matrix;

TEST(ZeroTree, FlagsMatchContents) {
  const TileGeometry g = make_geometry(32, 32, 2, Curve::ZMorton);  // 4x4 of 8x8
  Matrix src(32, 32);
  src.zero();
  // Populate two tiles: logical (0..7, 0..7) and (16..23, 24..31).
  for (std::uint32_t i = 0; i < 8; ++i) {
    for (std::uint32_t j = 0; j < 8; ++j) {
      src(i, j) = 1.0;
      src(16 + i, 24 + j) = 2.0;
    }
  }
  TiledMatrix tiled(g);
  canonical_to_tiled(src.data(), src.ld(), false, 1.0, g, tiled.data());
  const ZeroTree tree = ZeroTree::build(tiled);
  // Leaf level: exactly 2 of 16 tiles nonzero.
  EXPECT_NEAR(tree.zero_tile_fraction(), 14.0 / 16.0, 1e-12);
  // Tile (0,0) nonzero, tile (0,1) zero.
  EXPECT_FALSE(tree.zero(0, g.tile_offset(0, 0) / g.tile_elems()));
  EXPECT_TRUE(tree.zero(0, g.tile_offset(0, 1) / g.tile_elems()));
  EXPECT_FALSE(tree.zero(0, g.tile_offset(2, 3) / g.tile_elems()));
  // Root is not all-zero; the NE level-1 quadrant (tiles (0..1, 2..3)) is.
  EXPECT_FALSE(tree.zero(2, 0));
  TiledMatrix probe(g);
  const TiledBlock ne = probe.root().quadrant(kNE);
  EXPECT_TRUE(tree.zero(1, ne.s_base));
}

TEST(ZeroTree, AllZeroAndAllDense) {
  const TileGeometry g = make_geometry(16, 16, 1, Curve::Hilbert);
  TiledMatrix z(g);
  z.zero();
  EXPECT_DOUBLE_EQ(ZeroTree::build(z).zero_tile_fraction(), 1.0);
  EXPECT_TRUE(ZeroTree::build(z).zero(g.depth, 0));
  Matrix dense = random_matrix(16, 16, 1);
  TiledMatrix d(g);
  canonical_to_tiled(dense.data(), dense.ld(), false, 1.0, g, d.data());
  EXPECT_DOUBLE_EQ(ZeroTree::build(d).zero_tile_fraction(), 0.0);
}

TEST(ZeroTree, ParallelBuildMatchesSerial) {
  const TileGeometry g = make_geometry(64, 64, 3, Curve::GrayMorton);
  Matrix src = random_matrix(64, 64, 2);
  // Zero a band of columns.
  for (std::uint32_t j = 16; j < 32; ++j) {
    for (std::uint32_t i = 0; i < 64; ++i) src(i, j) = 0.0;
  }
  TiledMatrix tiled(g);
  canonical_to_tiled(src.data(), src.ld(), false, 1.0, g, tiled.data());
  const ZeroTree serial = ZeroTree::build(tiled);
  WorkerPool pool(4);
  const ZeroTree parallel = ZeroTree::build(tiled, &pool);
  EXPECT_DOUBLE_EQ(serial.zero_tile_fraction(), parallel.zero_tile_fraction());
}

class SkipZeroTest : public ::testing::TestWithParam<Curve> {};

TEST_P(SkipZeroTest, BlockSparseGemmIsCorrect) {
  const Curve curve = GetParam();
  const std::uint32_t n = 96;
  // Block-diagonal A, banded B: plenty of zero tiles.
  Matrix a(n, n), b(n, n);
  a.zero();
  b.zero();
  Xoshiro256 rng(5);
  for (std::uint32_t blk = 0; blk < 3; ++blk) {
    for (std::uint32_t i = 0; i < 32; ++i) {
      for (std::uint32_t j = 0; j < 32; ++j) {
        a(blk * 32 + i, blk * 32 + j) = rng.next_double(-1.0, 1.0);
      }
    }
  }
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = j >= 8 ? j - 8 : 0; i < std::min(n, j + 8); ++i) {
      b(i, j) = rng.next_double(-1.0, 1.0);
    }
  }
  GemmConfig skip;
  skip.layout = curve;
  skip.skip_zero_tiles = true;
  Matrix c_skip(n, n);
  multiply(c_skip, a, b, skip);

  Matrix c_ref(n, n);
  c_ref.zero();
  reference_gemm(n, n, n, 1.0, a.data(), a.ld(), false, b.data(), b.ld(), false,
                 0.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c_skip.view(), c_ref.view()), 1e-11) << curve_name(curve);

  // And bit-identical to the non-skipping run (skipping only elides
  // products that contribute exact zeros).
  GemmConfig no_skip = skip;
  no_skip.skip_zero_tiles = false;
  Matrix c_plain(n, n);
  multiply(c_plain, a, b, no_skip);
  EXPECT_EQ(max_abs_diff(c_skip.view(), c_plain.view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllRecursive, SkipZeroTest,
                         ::testing::ValuesIn(kRecursiveCurves),
                         [](const ::testing::TestParamInfo<Curve>& info) {
                           return rla::testing::sanitize(curve_name(info.param));
                         });

TEST(SkipZero, DenseResultsUnchanged) {
  GemmConfig cfg;
  cfg.skip_zero_tiles = true;
  EXPECT_LT(rla::testing::gemm_vs_reference(80, 80, 80, 1.0, Op::None, Op::None,
                                            1.0, cfg),
            1e-11);
}

TEST(SkipZero, InPlaceVariantAlsoSkips) {
  GemmConfig cfg;
  cfg.skip_zero_tiles = true;
  cfg.standard_variant = StandardVariant::InPlace;
  const std::uint32_t n = 64;
  Matrix a(n, n), b = random_matrix(n, n, 9);
  a.zero();  // entire A zero: product must leave beta·C
  Matrix c = random_matrix(n, n, 10);
  Matrix expected = c;
  gemm(n, n, n, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None, 1.0,
       c.data(), c.ld(), cfg);
  EXPECT_EQ(max_abs_diff(c.view(), expected.view()), 0.0);
}

}  // namespace
}  // namespace rla
