// Tests of orientation-aware quadrant additions (paper §4): streaming,
// Gray-Morton half-step, and Hilbert mapping-array paths, each validated
// against element-level logical arithmetic and against the generic path.

#include <gtest/gtest.h>

#include "core/add.hpp"
#include "core/tiled_matrix.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

constexpr std::uint32_t kN = 32;
constexpr int kDepth = 3;  // 8x8 tiles of 4x4

TileGeometry geom(Curve c) { return make_geometry(kN, kN, kDepth, c); }

TiledMatrix filled(Curve c, double scale, double offset) {
  TiledMatrix m(geom(c));
  for (std::uint32_t i = 0; i < kN; ++i) {
    for (std::uint32_t j = 0; j < kN; ++j) {
      m.at(i, j) = scale * (i * 100.0 + j) + offset;
    }
  }
  return m;
}

/// Logical top-left of quadrant q at level (depth-1).
std::uint32_t origin(int q, bool row) {
  const std::uint32_t h = kN / 2;
  return row ? (static_cast<std::uint32_t>(q) >> 1) * h
             : (static_cast<std::uint32_t>(q) & 1) * h;
}

class AddTest : public ::testing::TestWithParam<Curve> {};

TEST_P(AddTest, SetAddAcrossAllQuadrantPairs) {
  const Curve c = GetParam();
  TiledMatrix x = filled(c, 1.0, 0.0);
  TiledMatrix y = filled(c, -2.0, 5.0);
  const std::uint32_t h = kN / 2;
  for (int qd = 0; qd < 4; ++qd) {
    for (int qa = 0; qa < 4; ++qa) {
      for (int qb = 0; qb < 4; ++qb) {
        TiledMatrix z(geom(c));
        z.zero();
        block_set_add(z.root().quadrant(qd), x.root().quadrant(qa), +1.0,
                      y.root().quadrant(qb));
        const std::uint32_t di = origin(qd, true), dj = origin(qd, false);
        const std::uint32_t ai = origin(qa, true), aj = origin(qa, false);
        const std::uint32_t bi = origin(qb, true), bj = origin(qb, false);
        for (std::uint32_t u = 0; u < h; u += 3) {
          for (std::uint32_t v = 0; v < h; v += 3) {
            ASSERT_DOUBLE_EQ(z.at(di + u, dj + v),
                             x.at(ai + u, aj + v) + y.at(bi + u, bj + v))
                << curve_name(c) << " qd=" << qd << " qa=" << qa << " qb=" << qb;
          }
        }
      }
    }
  }
}

TEST_P(AddTest, GenericPathAgreesWithFastPath) {
  const Curve c = GetParam();
  TiledMatrix x = filled(c, 1.0, 0.0);
  TiledMatrix y = filled(c, 3.0, -1.0);
  for (int qa = 0; qa < 4; ++qa) {
    for (int qb = 0; qb < 4; ++qb) {
      TiledMatrix fast(geom(c)), generic(geom(c));
      fast.zero();
      generic.zero();
      block_set_add(fast.root().quadrant(kNW), x.root().quadrant(qa), -1.0,
                    y.root().quadrant(qb), /*force_generic=*/false);
      block_set_add(generic.root().quadrant(kNW), x.root().quadrant(qa), -1.0,
                    y.root().quadrant(qb), /*force_generic=*/true);
      for (std::uint64_t e = 0; e < fast.size(); ++e) {
        ASSERT_EQ(fast.data()[e], generic.data()[e]) << curve_name(c);
      }
    }
  }
}

TEST_P(AddTest, AccumulateWithSign) {
  const Curve c = GetParam();
  TiledMatrix x = filled(c, 1.0, 0.0);
  TiledMatrix z = filled(c, 2.0, 1.0);
  const std::uint32_t h = kN / 2;
  // z_NE -= x_SE (different orientations for Gray/Hilbert).
  block_acc(z.root().quadrant(kNE), -1.0, x.root().quadrant(kSE));
  for (std::uint32_t u = 0; u < h; ++u) {
    for (std::uint32_t v = 0; v < h; ++v) {
      const double expect =
          (2.0 * (u * 100.0 + (h + v)) + 1.0) - x.at(h + u, h + v);
      ASSERT_DOUBLE_EQ(z.at(u, h + v), expect) << curve_name(c);
    }
  }
}

TEST_P(AddTest, MultiOperandAccumulators) {
  const Curve c = GetParam();
  TiledMatrix p1 = filled(c, 1.0, 0.0);
  TiledMatrix p2 = filled(c, 2.0, 0.5);
  TiledMatrix p3 = filled(c, -1.0, 0.25);
  TiledMatrix p4 = filled(c, 0.5, -2.0);
  const std::uint32_t h = kN / 2;

  TiledMatrix z2(geom(c)), z3(geom(c)), z4(geom(c));
  z2.zero();
  z3.zero();
  z4.zero();
  block_acc2(z2.root().quadrant(kNW), +1.0, p1.root().quadrant(kSE), -1.0,
             p2.root().quadrant(kNE));
  block_acc3(z3.root().quadrant(kNW), +1.0, p1.root().quadrant(kNW), +1.0,
             p2.root().quadrant(kSW), -1.0, p3.root().quadrant(kSE));
  block_acc4(z4.root().quadrant(kSE), +1.0, p1.root().quadrant(kNW), +1.0,
             p2.root().quadrant(kNE), -1.0, p3.root().quadrant(kSW), +1.0,
             p4.root().quadrant(kSE));
  for (std::uint32_t u = 0; u < h; u += 5) {
    for (std::uint32_t v = 0; v < h; v += 5) {
      ASSERT_DOUBLE_EQ(z2.at(u, v), p1.at(h + u, h + v) - p2.at(u, h + v))
          << curve_name(c);
      ASSERT_DOUBLE_EQ(z3.at(u, v),
                       p1.at(u, v) + p2.at(h + u, v) - p3.at(h + u, h + v))
          << curve_name(c);
      ASSERT_DOUBLE_EQ(z4.at(h + u, h + v),
                       p1.at(u, v) + p2.at(u, h + v) - p3.at(h + u, v) +
                           p4.at(h + u, h + v))
          << curve_name(c);
    }
  }
}

TEST_P(AddTest, BlockCopyAcrossOrientations) {
  const Curve c = GetParam();
  TiledMatrix x = filled(c, 1.0, 0.0);
  const std::uint32_t h = kN / 2;
  for (int qd = 0; qd < 4; ++qd) {
    for (int qs = 0; qs < 4; ++qs) {
      TiledMatrix z(geom(c));
      z.zero();
      block_copy(z.root().quadrant(qd), x.root().quadrant(qs));
      const std::uint32_t di = origin(qd, true), dj = origin(qd, false);
      const std::uint32_t si = origin(qs, true), sj = origin(qs, false);
      for (std::uint32_t u = 0; u < h; u += 3) {
        for (std::uint32_t v = 0; v < h; v += 3) {
          ASSERT_EQ(z.at(di + u, dj + v), x.at(si + u, sj + v)) << curve_name(c);
        }
      }
    }
  }
}

TEST_P(AddTest, BlockZero) {
  const Curve c = GetParam();
  TiledMatrix x = filled(c, 1.0, 1.0);
  block_zero(x.root().quadrant(kSW));
  const std::uint32_t h = kN / 2;
  for (std::uint32_t u = 0; u < h; ++u) {
    for (std::uint32_t v = 0; v < h; ++v) {
      ASSERT_EQ(x.at(h + u, v), 0.0);
      ASSERT_NE(x.at(u, v), 0.0);  // other quadrants untouched
    }
  }
}

TEST_P(AddTest, TempRootAgainstQuadrantOrientation) {
  // The algorithms add original-matrix quadrants into orientation-0
  // temporaries; emulate S1 = A11 + A22 and check logically.
  const Curve c = GetParam();
  TiledMatrix a = filled(c, 1.0, 0.0);
  TileGeometry tg;
  tg.tile_rows = 4;
  tg.tile_cols = 4;
  tg.depth = kDepth - 1;
  tg.curve = c;
  tg.rows = tg.padded_rows();
  tg.cols = tg.padded_cols();
  TiledMatrix s1(tg);
  s1.zero();
  block_set_add(s1.root(), a.root().quadrant(kNW), +1.0, a.root().quadrant(kSE));
  const std::uint32_t h = kN / 2;
  for (std::uint32_t u = 0; u < h; ++u) {
    for (std::uint32_t v = 0; v < h; ++v) {
      ASSERT_DOUBLE_EQ(s1.at(u, v), a.at(u, v) + a.at(h + u, h + v))
          << curve_name(c);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRecursive, AddTest,
                         ::testing::ValuesIn(kRecursiveCurves),
                         [](const ::testing::TestParamInfo<Curve>& info) {
                           return rla::testing::sanitize(curve_name(info.param));
                         });

TEST(TileMapTest, GrayMismatchUsesRotation) {
  TiledMatrix a(geom(Curve::GrayMorton));
  const TiledBlock nw = a.root().quadrant(kNW);
  const TiledBlock ne = a.root().quadrant(kNE);
  ASSERT_NE(nw.orient, ne.orient);
  const TileMap m = make_tile_map(nw, ne);
  EXPECT_EQ(m.map, nullptr);
  EXPECT_EQ(m.rot, nw.tile_count() / 2);
}

TEST(TileMapTest, HilbertMismatchUsesMappingArray) {
  TiledMatrix a(geom(Curve::Hilbert));
  const TiledBlock nw = a.root().quadrant(kNW);
  const TiledBlock ne = a.root().quadrant(kNE);
  if (nw.orient == ne.orient) GTEST_SKIP() << "unexpected equal orientations";
  const TileMap m = make_tile_map(nw, ne);
  EXPECT_NE(m.map, nullptr);
}

TEST(TileMapTest, SameOrientationIsIdentityStream) {
  for (Curve c : kRecursiveCurves) {
    TiledMatrix a(geom(c));
    const TileMap m = make_tile_map(a.root(), a.root());
    EXPECT_TRUE(m.identity()) << curve_name(c);
  }
}

}  // namespace
}  // namespace rla
