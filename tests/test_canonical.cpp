// Tests of the canonical-layout (L_C) baseline recursions.

#include <gtest/gtest.h>

#include "core/canonical.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

using rla::testing::random_matrix;

double canon_std_error(std::uint32_t m, std::uint32_t n, std::uint32_t k,
                       const CanonContext& ctx) {
  Matrix a = random_matrix(m, k, 200);
  Matrix b = random_matrix(k, n, 201);
  Matrix c = random_matrix(m, n, 202);
  Matrix c_ref = c;
  canon_standard(ctx, c.view(), a.view(), b.view());
  reference_gemm(m, n, k, 1.0, a.data(), a.ld(), false, b.data(), b.ld(), false,
                 1.0, c_ref.data(), c_ref.ld());
  return max_abs_diff(c.view(), c_ref.view());
}

TEST(Canonical, StandardSquarePowerOfTwo) {
  WorkerPool pool(0);
  CanonContext ctx;
  ctx.pool = &pool;
  EXPECT_LT(canon_std_error(64, 64, 64, ctx), 1e-11);
}

TEST(Canonical, StandardOddSizes) {
  WorkerPool pool(0);
  CanonContext ctx;
  ctx.pool = &pool;
  // Ceiling-half splits must handle every awkward shape in place.
  EXPECT_LT(canon_std_error(37, 41, 53, ctx), 1e-11);
  EXPECT_LT(canon_std_error(1, 100, 1, ctx), 1e-11);
  EXPECT_LT(canon_std_error(100, 1, 7, ctx), 1e-11);
  EXPECT_LT(canon_std_error(65, 33, 129, ctx), 1e-11);
}

TEST(Canonical, StandardLeafSizeIndependence) {
  WorkerPool pool(0);
  for (std::uint32_t leaf : {8u, 16u, 32u, 64u}) {
    CanonContext ctx;
    ctx.pool = &pool;
    ctx.leaf = leaf;
    EXPECT_LT(canon_std_error(70, 70, 70, ctx), 1e-11) << "leaf=" << leaf;
  }
}

TEST(Canonical, StandardParallelMatchesSerial) {
  const std::uint32_t n = 96;
  Matrix a = random_matrix(n, n, 1);
  Matrix b = random_matrix(n, n, 2);
  auto run = [&](unsigned threads, StandardVariant variant) {
    WorkerPool pool(threads);
    CanonContext ctx;
    ctx.pool = &pool;
    ctx.standard_variant = variant;
    ctx.spawn_flops = 1;  // spawn aggressively
    Matrix c(n, n);
    c.zero();
    canon_standard(ctx, c.view(), a.view(), b.view());
    return c;
  };
  Matrix serial = run(0, StandardVariant::InPlace);
  Matrix parallel_inplace = run(3, StandardVariant::InPlace);
  EXPECT_EQ(max_abs_diff(serial.view(), parallel_inplace.view()), 0.0);
  // The Temporaries variant changes summation grouping, so compare with a
  // numeric tolerance rather than bitwise.
  Matrix parallel_temps = run(3, StandardVariant::Temporaries);
  EXPECT_LT(max_abs_diff(serial.view(), parallel_temps.view()), 1e-11);
}

double canon_fast_error(bool winograd, std::uint32_t s, const CanonContext& ctx) {
  Matrix a = random_matrix(s, s, 300);
  Matrix b = random_matrix(s, s, 301);
  Matrix c(s, s);
  c.zero();
  if (winograd) {
    canon_winograd(ctx, c.view(), a.view(), b.view());
  } else {
    canon_strassen(ctx, c.view(), a.view(), b.view());
  }
  Matrix c_ref(s, s);
  c_ref.zero();
  reference_gemm(s, s, s, 1.0, a.data(), a.ld(), false, b.data(), b.ld(), false,
                 0.0, c_ref.data(), c_ref.ld());
  return max_abs_diff(c.view(), c_ref.view());
}

TEST(Canonical, StrassenPowerOfTwo) {
  WorkerPool pool(0);
  CanonContext ctx;
  ctx.pool = &pool;
  ctx.leaf = 16;
  EXPECT_LT(canon_fast_error(false, 128, ctx), 1e-10);
}

TEST(Canonical, WinogradPowerOfTwo) {
  WorkerPool pool(0);
  CanonContext ctx;
  ctx.pool = &pool;
  ctx.leaf = 16;
  EXPECT_LT(canon_fast_error(true, 128, ctx), 1e-10);
}

TEST(Canonical, FastAlgorithmsHalvableNonPowerOfTwo) {
  // 96 = 24 * 4: halves down to 24 <= leaf(32).
  WorkerPool pool(0);
  CanonContext ctx;
  ctx.pool = &pool;
  EXPECT_LT(canon_fast_error(false, 96, ctx), 1e-10);
  EXPECT_LT(canon_fast_error(true, 96, ctx), 1e-10);
}

TEST(Canonical, FastParallelMatchesSerial) {
  const std::uint32_t s = 64;
  Matrix a = random_matrix(s, s, 5);
  Matrix b = random_matrix(s, s, 6);
  auto run = [&](unsigned threads) {
    WorkerPool pool(threads);
    CanonContext ctx;
    ctx.pool = &pool;
    ctx.leaf = 16;
    ctx.spawn_flops = 1;
    Matrix c(s, s);
    c.zero();
    canon_strassen(ctx, c.view(), a.view(), b.view());
    return c;
  };
  Matrix serial = run(0);
  Matrix parallel = run(4);
  EXPECT_EQ(max_abs_diff(serial.view(), parallel.view()), 0.0);
}

TEST(Canonical, SubviewsUntouchedOutsideTarget) {
  // In-place recursion must write only the target block of a larger array.
  WorkerPool pool(0);
  CanonContext ctx;
  ctx.pool = &pool;
  Matrix big = random_matrix(50, 50, 7);
  Matrix snapshot = big;
  Matrix a = random_matrix(20, 20, 8);
  Matrix b = random_matrix(20, 20, 9);
  MatrixView target{&big(10, 10), big.ld(), 20, 20};
  canon_standard(ctx, target, a.view(), b.view());
  for (std::uint32_t j = 0; j < 50; ++j) {
    for (std::uint32_t i = 0; i < 50; ++i) {
      if (i >= 10 && i < 30 && j >= 10 && j < 30) continue;
      ASSERT_EQ(big(i, j), snapshot(i, j)) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace rla
