// Tests of the paper §5.1 space-conserving sequential fast-algorithm
// variant (FastVariant::SerialLowMem) on both tiled and canonical layouts.

#include <gtest/gtest.h>

#include <tuple>

#include "test_common.hpp"

namespace rla {
namespace {

using rla::testing::gemm_vs_reference;

class LowMemTest
    : public ::testing::TestWithParam<std::tuple<Curve, Algorithm>> {};

TEST_P(LowMemTest, MatchesReference) {
  const auto [layout, alg] = GetParam();
  GemmConfig cfg;
  cfg.layout = layout;
  cfg.algorithm = alg;
  cfg.fast_variant = FastVariant::SerialLowMem;
  EXPECT_LT(gemm_vs_reference(96, 96, 96, 1.0, Op::None, Op::None, 0.0, cfg),
            1e-10);
  EXPECT_LT(gemm_vs_reference(70, 54, 62, -0.5, Op::Transpose, Op::None, 2.0, cfg),
            1e-10);
}

TEST_P(LowMemTest, MatchesParallelVariantNumerically) {
  const auto [layout, alg] = GetParam();
  const std::uint32_t n = 64;
  Matrix a = rla::testing::random_matrix(n, n, 1);
  Matrix b = rla::testing::random_matrix(n, n, 2);
  GemmConfig cfg;
  cfg.layout = layout;
  cfg.algorithm = alg;
  Matrix c_parallel(n, n);
  multiply(c_parallel, a, b, cfg);
  cfg.fast_variant = FastVariant::SerialLowMem;
  Matrix c_lowmem(n, n);
  multiply(c_lowmem, a, b, cfg);
  // Different summation grouping => compare with tolerance, not bitwise.
  EXPECT_LT(max_abs_diff(c_parallel.view(), c_lowmem.view()), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, LowMemTest,
    ::testing::Combine(::testing::Values(Curve::ColMajor, Curve::ZMorton,
                                         Curve::GrayMorton, Curve::Hilbert),
                       ::testing::Values(Algorithm::Strassen,
                                         Algorithm::Winograd)),
    [](const ::testing::TestParamInfo<LowMemTest::ParamType>& info) {
      return rla::testing::sanitize(curve_name(std::get<0>(info.param))) + "_" +
             rla::testing::sanitize(algorithm_name(std::get<1>(info.param)));
    });

TEST(LowMem, StandardAlgorithmUnaffectedByFastVariant) {
  GemmConfig cfg;
  cfg.algorithm = Algorithm::Standard;
  cfg.fast_variant = FastVariant::SerialLowMem;
  EXPECT_LT(gemm_vs_reference(48, 48, 48, 1.0, Op::None, Op::None, 1.0, cfg),
            1e-11);
}

TEST(LowMem, CutoffInteraction) {
  for (int cutoff = 0; cutoff <= 2; ++cutoff) {
    GemmConfig cfg;
    cfg.layout = Curve::ZMorton;
    cfg.algorithm = Algorithm::Strassen;
    cfg.fast_variant = FastVariant::SerialLowMem;
    cfg.fast_cutoff_level = cutoff;
    EXPECT_LT(gemm_vs_reference(80, 80, 80, 1.0, Op::None, Op::None, 0.0, cfg),
              1e-10)
        << cutoff;
  }
}

TEST(LowMem, WorkSpanModelsSerialExecution) {
  GemmConfig cfg;
  cfg.algorithm = Algorithm::Strassen;
  cfg.fast_variant = FastVariant::SerialLowMem;
  const WorkSpan lowmem = analyze_gemm(512, 512, 512, cfg);
  EXPECT_DOUBLE_EQ(lowmem.parallelism(), 1.0);  // span == work
  cfg.fast_variant = FastVariant::Parallel;
  const WorkSpan parallel = analyze_gemm(512, 512, 512, cfg);
  EXPECT_GT(parallel.parallelism(), 10.0);
  // Multiplication flops identical; the low-mem variant pays extra adds.
  EXPECT_GT(lowmem.work, 0.95 * parallel.work);
}

}  // namespace
}  // namespace rla
