// Tests of TileGeometry (paper Eq. 3), tile-size selection from
// [T_min, T_max], the wide/squat/lean classification, and padding behaviour
// (paper §4).

#include <gtest/gtest.h>

#include <array>

#include "layout/tiled_layout.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

TEST(TiledLayout, AddressMatchesEquationThree) {
  // L(i,j) = t_R·t_C·S(t_i,t_j) + L_C(f_i,f_j;t_R,t_C), spot-checked against
  // a direct evaluation for several curves.
  for (Curve c : kRecursiveCurves) {
    const TileGeometry g = make_geometry(48, 48, 2, c);  // 4x4 grid of 12x12
    ASSERT_EQ(g.tile_rows, 12u);
    ASSERT_EQ(g.tile_cols, 12u);
    for (std::uint32_t i = 0; i < g.padded_rows(); i += 7) {
      for (std::uint32_t j = 0; j < g.padded_cols(); j += 5) {
        const std::uint32_t ti = i / 12, fi = i % 12;
        const std::uint32_t tj = j / 12, fj = j % 12;
        const std::uint64_t expected =
            144 * s_index(c, ti, tj, 2) + 12 * fj + fi;
        ASSERT_EQ(g.address(i, j), expected) << curve_name(c);
      }
    }
  }
}

TEST(TiledLayout, AddressIsABijectionOntoPaddedRange) {
  const TileGeometry g = make_geometry(20, 24, 2, Curve::Hilbert);
  std::vector<bool> hit(g.total_elems(), false);
  for (std::uint32_t i = 0; i < g.padded_rows(); ++i) {
    for (std::uint32_t j = 0; j < g.padded_cols(); ++j) {
      const std::uint64_t a = g.address(i, j);
      ASSERT_LT(a, g.total_elems());
      ASSERT_FALSE(hit[a]);
      hit[a] = true;
    }
  }
}

TEST(TiledLayout, PaddingGeometry) {
  // 1000 at depth 5 (32 tiles/side): tile edge ceil(1000/32) = 32, padded
  // to 1024 — the explicit-zero padding scheme of §4.
  const TileGeometry g = make_geometry(1000, 1000, 5, Curve::ZMorton);
  EXPECT_EQ(g.tile_rows, 32u);
  EXPECT_EQ(g.padded_rows(), 1024u);
  EXPECT_EQ(g.total_elems(), 1024u * 1024u);
}

TEST(TiledLayout, DepthFeasible) {
  const TileRange range{16, 32, 16};
  // 1024: depth 5 gives 32 (feasible), depth 6 gives 16 (feasible),
  // depth 7 gives 8 (< T_min, infeasible), depth 4 gives 64 (> T_max).
  EXPECT_FALSE(depth_feasible(1024, 4, range));
  EXPECT_TRUE(depth_feasible(1024, 5, range));
  EXPECT_TRUE(depth_feasible(1024, 6, range));
  EXPECT_FALSE(depth_feasible(1024, 7, range));
  // Small matrices are a single tile at depth 0 even below T_min.
  EXPECT_TRUE(depth_feasible(5, 0, range));
  EXPECT_FALSE(depth_feasible(5, 1, range));
  EXPECT_FALSE(depth_feasible(0, 0, range));
}

TEST(TiledLayout, FeasibleDepthMaskContiguity) {
  const TileRange range{16, 32, 16};
  for (std::uint64_t x : {17ull, 100ull, 512ull, 1000ull, 1536ull, 4096ull}) {
    const std::uint32_t mask = feasible_depths(x, range);
    ASSERT_NE(mask, 0u) << x;
    // The feasible set is a contiguous band of depths.
    const std::uint32_t low = mask & (~mask + 1);
    EXPECT_EQ((mask / low) & ((mask / low) + 1), 0u) << "non-contiguous for " << x;
  }
}

TEST(TiledLayout, CommonDepthSquare) {
  const TileRange range{16, 32, 16};
  const std::array<std::uint64_t, 3> dims{1024, 1024, 1024};
  const auto d = common_depth(dims, range);
  ASSERT_TRUE(d.has_value());
  // t_pref = 16 => depth 6 (tile edge exactly 16).
  EXPECT_EQ(*d, 6);
}

TEST(TiledLayout, CommonDepthPaperCounterexample) {
  // Paper §4: m=1024, n=256, T_min=17, T_max=32 has no feasible shared
  // depth — the motivating example for wide/lean splitting.
  const TileRange range{17, 32, 24};
  const std::array<std::uint64_t, 2> dims{1024, 256};
  EXPECT_FALSE(common_depth(dims, range).has_value());
}

TEST(TiledLayout, CommonDepthModestRectangles) {
  const TileRange range{16, 32, 16};
  const std::array<std::uint64_t, 3> dims{300, 400, 500};
  const auto d = common_depth(dims, range);
  ASSERT_TRUE(d.has_value());
  for (std::uint64_t x : dims) EXPECT_TRUE(depth_feasible(x, *d, range));
}

TEST(TiledLayout, ClassifyAspect) {
  const TileRange range{16, 32, 16};  // alpha = 2
  EXPECT_EQ(classify_aspect(100, 100, range), Aspect::Squat);
  EXPECT_EQ(classify_aspect(200, 100, range), Aspect::Squat);  // ratio == alpha
  EXPECT_EQ(classify_aspect(201, 100, range), Aspect::Wide);
  EXPECT_EQ(classify_aspect(100, 201, range), Aspect::Lean);
}

TEST(TiledLayout, PadRatioBoundedByTmin) {
  // Paper §4: with tiles from [T_min, T_max] the pad-to-matrix ratio is at
  // most 1/T_min per dimension.
  const TileRange range{16, 32, 16};
  for (std::uint64_t x = 100; x <= 2000; x += 37) {
    const auto mask = feasible_depths(x, range);
    ASSERT_NE(mask, 0u);
    for (int d = 0; d < 31; ++d) {
      if ((mask & (1u << d)) == 0) continue;
      const std::uint64_t t = (x + (1ull << d) - 1) >> d;
      const std::uint64_t padded = t << d;
      // pad < 2^d and x > (T_min - 1)·2^d for d >= 1, so the ratio is below
      // 1/(T_min - 1) — the paper's "at most 1/T_min" up to rounding.
      EXPECT_LE(static_cast<double>(padded - x) / static_cast<double>(x),
                1.0 / (range.t_min - 1) + 1e-12)
          << "x=" << x << " d=" << d;
    }
  }
}

TEST(TiledLayout, TileOffsetsAreTileSized) {
  const TileGeometry g = make_geometry(64, 64, 3, Curve::GrayMorton);
  for (std::uint32_t ti = 0; ti < 8; ++ti) {
    for (std::uint32_t tj = 0; tj < 8; ++tj) {
      EXPECT_EQ(g.tile_offset(ti, tj) % g.tile_elems(), 0u);
    }
  }
}

}  // namespace
}  // namespace rla
