// Tests of the recursive tiled Cholesky factorization and its building
// blocks (A·Bᵀ multiply, right-lower-transposed TRSM, SYRK update).

#include <gtest/gtest.h>

#include "core/gemm.hpp"
#include "layout/convert.hpp"
#include "linalg/cholesky.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

using rla::testing::random_matrix;

/// Deterministic SPD matrix: A = M·Mᵀ + n·I.
Matrix make_spd(std::uint32_t n, std::uint64_t seed) {
  Matrix m = random_matrix(n, n, seed);
  Matrix a(n, n);
  a.zero();
  reference_gemm(n, n, n, 1.0, m.data(), m.ld(), false, m.data(), m.ld(), true,
                 0.0, a.data(), a.ld());
  for (std::uint32_t i = 0; i < n; ++i) a(i, i) += n;
  return a;
}

/// Max |A - L·Lᵀ| over the full matrix.
double reconstruction_error(const Matrix& a, const Matrix& l) {
  Matrix rebuilt(a.rows(), a.cols());
  rebuilt.zero();
  reference_gemm(a.rows(), a.cols(), a.cols(), 1.0, l.data(), l.ld(), false,
                 l.data(), l.ld(), true, 0.0, rebuilt.data(), rebuilt.ld());
  return max_abs_diff(a.view(), rebuilt.view());
}

TEST(ReferenceCholesky, FactorsKnownMatrix) {
  // A = [[4, 2],[2, 5]] -> L = [[2, 0],[1, 2]].
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 5;
  ASSERT_TRUE(reference_cholesky(2, a.data(), a.ld()));
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

TEST(ReferenceCholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_FALSE(reference_cholesky(2, a.data(), a.ld()));
}

class CholeskyTest : public ::testing::TestWithParam<Curve> {};

TEST_P(CholeskyTest, ReconstructsSpdMatrix) {
  const Curve curve = GetParam();
  for (const std::uint32_t n : {16u, 33u, 64u, 100u, 130u}) {
    Matrix a = make_spd(n, 7 + n);
    Matrix l = a;
    CholeskyConfig cfg;
    cfg.layout = curve;
    cholesky(n, l.data(), l.ld(), cfg);
    EXPECT_LT(reconstruction_error(a, l), 1e-8 * n)
        << curve_name(curve) << " n=" << n;
    // Strict upper triangle must be zeroed.
    for (std::uint32_t j = 1; j < n; ++j) {
      for (std::uint32_t i = 0; i < j; ++i) ASSERT_EQ(l(i, j), 0.0);
    }
  }
}

TEST_P(CholeskyTest, MatchesReferenceFactor) {
  // The Cholesky factor is unique (positive diagonal), so the recursive and
  // unblocked factors must agree to rounding.
  const Curve curve = GetParam();
  const std::uint32_t n = 96;
  Matrix a = make_spd(n, 3);
  Matrix l_rec = a;
  CholeskyConfig cfg;
  cfg.layout = curve;
  cholesky(n, l_rec.data(), l_rec.ld(), cfg);
  Matrix l_ref = a;
  ASSERT_TRUE(reference_cholesky(n, l_ref.data(), l_ref.ld()));
  EXPECT_LT(max_abs_diff(l_rec.view(), l_ref.view()), 1e-8);
}

TEST_P(CholeskyTest, ParallelMatchesSerial) {
  const Curve curve = GetParam();
  const std::uint32_t n = 128;
  Matrix a = make_spd(n, 9);
  Matrix serial = a, parallel = a;
  CholeskyConfig cfg;
  cfg.layout = curve;
  cholesky(n, serial.data(), serial.ld(), cfg);
  cfg.threads = 4;
  cholesky(n, parallel.data(), parallel.ld(), cfg);
  EXPECT_EQ(max_abs_diff(serial.view(), parallel.view()), 0.0) << curve_name(curve);
}

INSTANTIATE_TEST_SUITE_P(AllRecursive, CholeskyTest,
                         ::testing::ValuesIn(kRecursiveCurves),
                         [](const ::testing::TestParamInfo<Curve>& info) {
                           return rla::testing::sanitize(curve_name(info.param));
                         });

TEST(Cholesky, ThrowsOnIndefinite) {
  const std::uint32_t n = 32;
  Matrix a = make_spd(n, 4);
  a(5, 5) = -100.0;  // break positive definiteness
  CholeskyConfig cfg;
  EXPECT_THROW(cholesky(n, a.data(), a.ld(), cfg), std::domain_error);
}

TEST(Cholesky, ArgumentValidation) {
  Matrix a(4, 4);
  CholeskyConfig cfg;
  EXPECT_THROW(cholesky(4, nullptr, 4, cfg), std::invalid_argument);
  EXPECT_THROW(cholesky(4, a.data(), 2, cfg), std::invalid_argument);
  cfg.layout = Curve::ColMajor;
  EXPECT_THROW(cholesky(4, a.data(), 4, cfg), std::invalid_argument);
}

TEST(Cholesky, ProfilePopulated) {
  const std::uint32_t n = 64;
  Matrix a = make_spd(n, 5);
  CholeskyConfig cfg;
  CholeskyProfile profile;
  cholesky(n, a.data(), a.ld(), cfg, &profile);
  EXPECT_GT(profile.total, 0.0);
  EXPECT_GT(profile.compute, 0.0);
  EXPECT_GE(profile.depth, 0);
  EXPECT_GE(profile.tile, 1u);
}

TEST(Cholesky, LeadingDimensionRespected) {
  const std::uint32_t n = 48;
  Matrix big = random_matrix(64, 64, 6);
  Matrix snapshot = big;
  Matrix a = make_spd(n, 8);
  // Copy the SPD matrix into a window of the bigger array.
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = 0; i < n; ++i) big(i, j) = a(i, j);
  }
  CholeskyConfig cfg;
  cholesky(n, big.data(), big.ld(), cfg);
  // Outside the n×n window nothing may change.
  for (std::uint32_t j = 0; j < 64; ++j) {
    for (std::uint32_t i = 0; i < 64; ++i) {
      if (i < n && j < n) continue;
      ASSERT_EQ(big(i, j), snapshot(i, j)) << i << "," << j;
    }
  }
  Matrix l(n, n);
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = 0; i < n; ++i) l(i, j) = big(i, j);
  }
  EXPECT_LT(reconstruction_error(a, l), 1e-8 * n);
}

// ---- building blocks ----

TEST(CholeskyBlocks, MulNtMatchesReference) {
  const std::uint32_t n = 64;
  Matrix a = random_matrix(n, n, 11);
  Matrix b = random_matrix(n, n, 12);
  const TileGeometry g = make_geometry(n, n, 3, Curve::Hilbert);
  TiledMatrix ta(g), tb(g), tc(g);
  canonical_to_tiled(a.data(), a.ld(), false, 1.0, g, ta.data());
  canonical_to_tiled(b.data(), b.ld(), false, 1.0, g, tb.data());
  tc.zero();
  WorkerPool pool(0);
  MulContext ctx;
  ctx.pool = &pool;
  mul_nt(ctx, -2.0, tc.root(), ta.root(), tb.root());
  Matrix c(n, n);
  tiled_to_canonical(tc.data(), g, c.data(), c.ld());
  Matrix c_ref(n, n);
  c_ref.zero();
  reference_gemm(n, n, n, -2.0, a.data(), a.ld(), false, b.data(), b.ld(), true,
                 0.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11);
}

TEST(CholeskyBlocks, TrsmSolvesAgainstFactor) {
  // Build a well-conditioned lower-triangular L, random X; after
  // X' = trsm(X, L), X'·Lᵀ must equal the original X.
  const std::uint32_t n = 64;
  Matrix l(n, n);
  l.zero();
  Xoshiro256 rng(13);
  for (std::uint32_t j = 0; j < n; ++j) {
    l(j, j) = 1.0 + rng.next_double();
    for (std::uint32_t i = j + 1; i < n; ++i) {
      l(i, j) = 0.25 * rng.next_double(-1.0, 1.0);
    }
  }
  Matrix x = random_matrix(n, n, 14);

  const TileGeometry g = make_geometry(n, n, 3, Curve::GrayMorton);
  TiledMatrix tl(g), tx(g);
  canonical_to_tiled(l.data(), l.ld(), false, 1.0, g, tl.data());
  canonical_to_tiled(x.data(), x.ld(), false, 1.0, g, tx.data());
  WorkerPool pool(0);
  MulContext ctx;
  ctx.pool = &pool;
  trsm_right_lower_transposed(ctx, tx.root(), tl.root());

  Matrix solved(n, n);
  tiled_to_canonical(tx.data(), g, solved.data(), solved.ld());
  Matrix back(n, n);
  back.zero();
  reference_gemm(n, n, n, 1.0, solved.data(), solved.ld(), false, l.data(),
                 l.ld(), true, 0.0, back.data(), back.ld());
  EXPECT_LT(max_abs_diff(back.view(), x.view()), 1e-10);
}

TEST(CholeskyBlocks, SyrkUpdatesLowerQuadrants) {
  const std::uint32_t n = 32;
  Matrix a = random_matrix(n, n, 15);
  Matrix c = random_matrix(n, n, 16);
  const TileGeometry g = make_geometry(n, n, 2, Curve::ZMorton);
  TiledMatrix ta(g), tc(g);
  canonical_to_tiled(a.data(), a.ld(), false, 1.0, g, ta.data());
  canonical_to_tiled(c.data(), c.ld(), false, 1.0, g, tc.data());
  WorkerPool pool(0);
  MulContext ctx;
  ctx.pool = &pool;
  syrk_lower_update(ctx, tc.root(), ta.root());
  Matrix out(n, n);
  tiled_to_canonical(tc.data(), g, out.data(), out.ld());

  Matrix full(n, n);
  full = c;
  reference_gemm(n, n, n, -1.0, a.data(), a.ld(), false, a.data(), a.ld(), true,
                 1.0, full.data(), full.ld());
  // Lower triangle (including diagonal) must match the full update.
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = j; i < n; ++i) {
      ASSERT_NEAR(out(i, j), full(i, j), 1e-11) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace rla
