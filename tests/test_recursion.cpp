// Tests of the tiled recursive algorithms (standard / Strassen / Winograd)
// across all recursive layouts, against the reference oracle.

#include <gtest/gtest.h>

#include <tuple>

#include "core/matrix.hpp"
#include "core/recursion.hpp"
#include "layout/convert.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

using rla::testing::random_matrix;

/// Multiply via the tiled recursion (C_tiled += A_tiled · B_tiled) and
/// return the max deviation from the reference product.
double tiled_mul_error(Curve curve, Algorithm alg, std::uint32_t m,
                       std::uint32_t n, std::uint32_t k, int depth,
                       const MulContext& base_ctx) {
  Matrix a = random_matrix(m, k, 100);
  Matrix b = random_matrix(k, n, 101);

  TiledMatrix ta(make_geometry(m, k, depth, curve));
  TiledMatrix tb(make_geometry(k, n, depth, curve));
  TiledMatrix tc(make_geometry(m, n, depth, curve));
  canonical_to_tiled(a.data(), a.ld(), false, 1.0, ta.geom(), ta.data());
  canonical_to_tiled(b.data(), b.ld(), false, 1.0, tb.geom(), tb.data());
  tc.zero();

  MulContext ctx = base_ctx;
  mul_dispatch(ctx, alg, tc.root(), ta.root(), tb.root());

  Matrix c(m, n);
  tiled_to_canonical(tc.data(), tc.geom(), c.data(), c.ld());
  Matrix c_ref(m, n);
  c_ref.zero();
  reference_gemm(m, n, k, 1.0, a.data(), a.ld(), false, b.data(), b.ld(), false,
                 0.0, c_ref.data(), c_ref.ld());
  return max_abs_diff(c.view(), c_ref.view());
}

class RecursionTest
    : public ::testing::TestWithParam<std::tuple<Curve, Algorithm>> {};

TEST_P(RecursionTest, SquareExactGrid) {
  const auto [curve, alg] = GetParam();
  WorkerPool pool(0);
  MulContext ctx;
  ctx.pool = &pool;
  // 64x64 at depth 3: 8x8 tiles of 8x8.
  EXPECT_LT(tiled_mul_error(curve, alg, 64, 64, 64, 3, ctx), 1e-10);
}

TEST_P(RecursionTest, PaddedRectangular) {
  const auto [curve, alg] = GetParam();
  WorkerPool pool(0);
  MulContext ctx;
  ctx.pool = &pool;
  // 60x52x44 at depth 2: ragged tiles with live padding arithmetic.
  EXPECT_LT(tiled_mul_error(curve, alg, 60, 52, 44, 2, ctx), 1e-10);
}

TEST_P(RecursionTest, DeepRecursion) {
  const auto [curve, alg] = GetParam();
  WorkerPool pool(0);
  MulContext ctx;
  ctx.pool = &pool;
  // depth 4 with 4x4 tiles: 5 recursion levels exercise orientation nesting.
  EXPECT_LT(tiled_mul_error(curve, alg, 64, 64, 64, 4, ctx), 1e-10);
}

TEST_P(RecursionTest, ParallelMatchesSerialBitwise) {
  const auto [curve, alg] = GetParam();
  // The post-wait addition order is deterministic, so parallel execution
  // must produce bit-identical results to serial.
  const std::uint32_t n = 48;
  Matrix a = random_matrix(n, n, 7);
  Matrix b = random_matrix(n, n, 8);
  auto run = [&](WorkerPool& pool) {
    TiledMatrix ta(make_geometry(n, n, 2, curve));
    TiledMatrix tb(make_geometry(n, n, 2, curve));
    TiledMatrix tc(make_geometry(n, n, 2, curve));
    canonical_to_tiled(a.data(), a.ld(), false, 1.0, ta.geom(), ta.data());
    canonical_to_tiled(b.data(), b.ld(), false, 1.0, tb.geom(), tb.data());
    tc.zero();
    MulContext ctx;
    ctx.pool = &pool;
    ctx.spawn_min_level = 1;
    mul_dispatch(ctx, alg, tc.root(), ta.root(), tb.root());
    Matrix c(n, n);
    tiled_to_canonical(tc.data(), tc.geom(), c.data(), c.ld());
    return c;
  };
  WorkerPool serial(0), parallel(4);
  Matrix cs = run(serial);
  Matrix cp = run(parallel);
  EXPECT_EQ(max_abs_diff(cs.view(), cp.view()), 0.0)
      << curve_name(curve) << "/" << algorithm_name(alg);
}

TEST_P(RecursionTest, GenericAdditionAblationAgrees) {
  const auto [curve, alg] = GetParam();
  WorkerPool pool(0);
  MulContext fast_ctx;
  fast_ctx.pool = &pool;
  MulContext generic_ctx = fast_ctx;
  generic_ctx.force_generic_additions = true;
  const double e1 = tiled_mul_error(curve, alg, 40, 40, 40, 2, fast_ctx);
  const double e2 = tiled_mul_error(curve, alg, 40, 40, 40, 2, generic_ctx);
  EXPECT_LT(e1, 1e-10);
  EXPECT_LT(e2, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    CurveByAlgorithm, RecursionTest,
    ::testing::Combine(::testing::ValuesIn(kRecursiveCurves),
                       ::testing::Values(Algorithm::Standard, Algorithm::Strassen,
                                         Algorithm::Winograd)),
    [](const ::testing::TestParamInfo<RecursionTest::ParamType>& info) {
      return rla::testing::sanitize(curve_name(std::get<0>(info.param))) +
             "_" +
             rla::testing::sanitize(algorithm_name(std::get<1>(info.param)));
    });

TEST(Recursion, InPlaceVariantMatchesTemporaries) {
  WorkerPool pool(0);
  MulContext temporaries;
  temporaries.pool = &pool;
  temporaries.standard_variant = StandardVariant::Temporaries;
  MulContext in_place = temporaries;
  in_place.standard_variant = StandardVariant::InPlace;
  const double e1 =
      tiled_mul_error(Curve::ZMorton, Algorithm::Standard, 64, 64, 64, 3,
                      temporaries);
  const double e2 =
      tiled_mul_error(Curve::ZMorton, Algorithm::Standard, 64, 64, 64, 3,
                      in_place);
  EXPECT_LT(e1, 1e-10);
  EXPECT_LT(e2, 1e-10);
}

TEST(Recursion, FastCutoffLevels) {
  WorkerPool pool(0);
  for (int cutoff = 0; cutoff <= 3; ++cutoff) {
    MulContext ctx;
    ctx.pool = &pool;
    ctx.fast_cutoff_level = cutoff;
    EXPECT_LT(
        tiled_mul_error(Curve::Hilbert, Algorithm::Strassen, 48, 48, 48, 3, ctx),
        1e-10)
        << "cutoff=" << cutoff;
    EXPECT_LT(
        tiled_mul_error(Curve::GrayMorton, Algorithm::Winograd, 48, 48, 48, 3, ctx),
        1e-10)
        << "cutoff=" << cutoff;
  }
}

TEST(Recursion, AccumulatesIntoExistingC) {
  // The recursion contract is C += A·B.
  WorkerPool pool(0);
  const std::uint32_t n = 32;
  Matrix a = random_matrix(n, n, 1);
  Matrix b = random_matrix(n, n, 2);
  Matrix c0 = random_matrix(n, n, 3);

  TiledMatrix ta(make_geometry(n, n, 2, Curve::ZMorton));
  TiledMatrix tb(make_geometry(n, n, 2, Curve::ZMorton));
  TiledMatrix tc(make_geometry(n, n, 2, Curve::ZMorton));
  canonical_to_tiled(a.data(), a.ld(), false, 1.0, ta.geom(), ta.data());
  canonical_to_tiled(b.data(), b.ld(), false, 1.0, tb.geom(), tb.data());
  canonical_to_tiled(c0.data(), c0.ld(), false, 1.0, tc.geom(), tc.data());

  MulContext ctx;
  ctx.pool = &pool;
  mul_standard(ctx, tc.root(), ta.root(), tb.root());

  Matrix c(n, n);
  tiled_to_canonical(tc.data(), tc.geom(), c.data(), c.ld());
  Matrix c_ref = c0;
  reference_gemm(n, n, n, 1.0, a.data(), a.ld(), false, b.data(), b.ld(), false,
                 1.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11);
}

}  // namespace
}  // namespace rla
