// Tests of the SMP coherence model and its false-sharing classification.

#include <gtest/gtest.h>

#include "cachesim/coherence.hpp"

namespace rla::sim {
namespace {

SmpConfig two_cores() {
  SmpConfig cfg;
  cfg.cores = 2;
  cfg.l1 = {1024, 64, 2, false};
  cfg.word_bytes = 8;
  return cfg;
}

TEST(Coherence, WriteInvalidatesOtherCopies) {
  SmpCaches smp(two_cores());
  smp.access({0, 0, false});  // core 0 reads line 0
  smp.access({0, 1, false});  // core 1 reads line 0
  EXPECT_TRUE(smp.l1(0).contains(0));
  EXPECT_TRUE(smp.l1(1).contains(0));
  smp.access({0, 0, true});   // core 0 writes
  EXPECT_FALSE(smp.l1(1).contains(0));
  EXPECT_EQ(smp.stats().invalidations, 1u);
}

TEST(Coherence, TrueSharingClassification) {
  SmpCaches smp(two_cores());
  smp.access({0, 1, false});  // core 1 reads word 0 of line 0
  smp.access({0, 0, true});   // core 0 writes the SAME word
  EXPECT_EQ(smp.stats().true_sharing_invalidations, 1u);
  EXPECT_EQ(smp.stats().false_sharing_invalidations, 0u);
}

TEST(Coherence, FalseSharingClassification) {
  SmpCaches smp(two_cores());
  smp.access({0, 1, false});   // core 1 reads word 0 of line 0
  smp.access({32, 0, true});   // core 0 writes word 4 of the same line
  EXPECT_EQ(smp.stats().false_sharing_invalidations, 1u);
  EXPECT_EQ(smp.stats().true_sharing_invalidations, 0u);
}

TEST(Coherence, PingPongFalseSharing) {
  // The paper's scenario: two processors write different words of a shared
  // memory block — quadrant boundary straddling a cache line.
  SmpCaches smp(two_cores());
  for (int round = 0; round < 10; ++round) {
    smp.access({0, 0, true});   // core 0 writes word 0
    smp.access({32, 1, true});  // core 1 writes word 4, same line
  }
  EXPECT_GE(smp.stats().false_sharing_invalidations, 18u);
  EXPECT_EQ(smp.stats().true_sharing_invalidations, 0u);
  EXPECT_GE(smp.stats().coherence_misses, 18u);
}

TEST(Coherence, DisjointLinesNeverInvalidate) {
  SmpCaches smp(two_cores());
  for (int round = 0; round < 10; ++round) {
    smp.access({0, 0, true});
    smp.access({64, 1, true});  // different line
  }
  EXPECT_EQ(smp.stats().invalidations, 0u);
  EXPECT_EQ(smp.stats().coherence_misses, 0u);
}

TEST(Coherence, CoherenceMissDistinctFromColdMiss) {
  SmpCaches smp(two_cores());
  smp.access({0, 0, false});  // cold miss, not coherence
  smp.access({0, 1, true});   // cold miss for core 1, invalidates core 0
  smp.access({0, 0, false});  // coherence miss (lost the line)
  EXPECT_EQ(smp.stats().coherence_misses, 1u);
}

TEST(Coherence, TouchMaskResetsOnRefetch) {
  SmpCaches smp(two_cores());
  smp.access({0, 1, false});   // core 1 touches word 0
  smp.access({8, 0, true});    // core 0 writes word 1 -> false sharing
  EXPECT_EQ(smp.stats().false_sharing_invalidations, 1u);
  smp.access({8, 1, false});   // core 1 refetches, touches only word 1
  smp.access({0, 0, true});    // write to word 0 -> false again (mask reset)
  EXPECT_EQ(smp.stats().false_sharing_invalidations, 2u);
  smp.access({8, 1, false});   // core 1 refetches word 1
  smp.access({8, 0, true});    // write word 1 -> TRUE sharing
  EXPECT_EQ(smp.stats().true_sharing_invalidations, 1u);
}

TEST(Coherence, AggregateCounters) {
  SmpCaches smp(two_cores());
  smp.access({0, 0, false});
  smp.access({0, 0, false});
  smp.access({64, 1, false});
  EXPECT_EQ(smp.total_accesses(), 3u);
  EXPECT_EQ(smp.total_misses(), 2u);
  EXPECT_NEAR(smp.miss_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Coherence, Reset) {
  SmpCaches smp(two_cores());
  smp.access({0, 0, true});
  smp.access({0, 1, true});
  smp.reset();
  EXPECT_EQ(smp.stats().invalidations, 0u);
  EXPECT_EQ(smp.total_accesses(), 0u);
  EXPECT_FALSE(smp.l1(0).contains(0));
}

TEST(Coherence, FourCoreBroadcastInvalidation) {
  SmpConfig cfg;
  cfg.cores = 4;
  cfg.l1 = {1024, 64, 2, false};
  SmpCaches smp(cfg);
  for (std::uint32_t c = 0; c < 4; ++c) smp.access({0, c, false});
  smp.access({16, 3, true});  // invalidates the other three copies
  EXPECT_EQ(smp.stats().invalidations, 3u);
}

}  // namespace
}  // namespace rla::sim
