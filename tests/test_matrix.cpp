// Tests of the column-major Matrix container, views, and the reference gemm
// oracle itself (hand-computed cases, BLAS semantics).

#include <gtest/gtest.h>

#include "core/matrix.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

TEST(Matrix, StorageIsColumnMajor) {
  Matrix m(3, 2);
  m.fill([](std::uint32_t i, std::uint32_t j) { return 10.0 * i + j; });
  // Column 0 then column 1, contiguous.
  EXPECT_EQ(m.data()[0], 0.0);   // (0,0)
  EXPECT_EQ(m.data()[1], 10.0);  // (1,0)
  EXPECT_EQ(m.data()[2], 20.0);  // (2,0)
  EXPECT_EQ(m.data()[3], 1.0);   // (0,1)
  EXPECT_EQ(m.ld(), 3u);
}

TEST(Matrix, ViewSubscripting) {
  Matrix m(4, 4);
  m.fill([](std::uint32_t i, std::uint32_t j) { return 10.0 * i + j; });
  ConstMatrixView v = m.view();
  EXPECT_EQ(v(2, 3), 23.0);
  MatrixView w = m.view();
  w(2, 3) = -1.0;
  EXPECT_EQ(m(2, 3), -1.0);
}

TEST(Matrix, FillRandomIsDeterministic) {
  Matrix a(16, 16), b(16, 16);
  a.fill_random(123);
  b.fill_random(123);
  EXPECT_EQ(max_abs_diff(a.view(), b.view()), 0.0);
  b.fill_random(124);
  EXPECT_GT(max_abs_diff(a.view(), b.view()), 0.0);
}

TEST(Matrix, MaxAbsDiffAndMaxAbs) {
  Matrix a(2, 2), b(2, 2);
  a.fill([](auto i, auto j) { return static_cast<double>(i + j); });
  b = a;
  b(1, 1) += 0.5;
  EXPECT_DOUBLE_EQ(max_abs_diff(a.view(), b.view()), 0.5);
  EXPECT_DOUBLE_EQ(max_abs(b.view()), 2.5);
}

TEST(ReferenceGemm, HandComputed2x2) {
  // A = [1 2; 3 4], B = [5 6; 7 8] (row-wise notation), C = A*B.
  Matrix a(2, 2), b(2, 2), c(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  c.zero();
  reference_gemm(2, 2, 2, 1.0, a.data(), 2, false, b.data(), 2, false, 0.0,
                 c.data(), 2);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(ReferenceGemm, AlphaBetaSemantics) {
  Matrix a(2, 2), b(2, 2), c(2, 2);
  a.fill([](auto, auto) { return 1.0; });
  b.fill([](auto, auto) { return 1.0; });
  c.fill([](auto, auto) { return 10.0; });
  // C = 2*A*B + 3*C: each element = 2*2 + 30 = 34.
  reference_gemm(2, 2, 2, 2.0, a.data(), 2, false, b.data(), 2, false, 3.0,
                 c.data(), 2);
  EXPECT_DOUBLE_EQ(c(0, 0), 34.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 34.0);
}

TEST(ReferenceGemm, BetaZeroOverwritesNaN) {
  // BLAS beta == 0 must ignore (not multiply) existing C, even NaN.
  Matrix a(1, 1), b(1, 1), c(1, 1);
  a(0, 0) = 2.0;
  b(0, 0) = 3.0;
  c(0, 0) = std::numeric_limits<double>::quiet_NaN();
  reference_gemm(1, 1, 1, 1.0, a.data(), 1, false, b.data(), 1, false, 0.0,
                 c.data(), 1);
  EXPECT_DOUBLE_EQ(c(0, 0), 6.0);
}

TEST(ReferenceGemm, TransposeSemantics) {
  Matrix a(3, 2);  // op(A) = A^T is 2x3
  a.fill([](auto i, auto j) { return static_cast<double>(i * 10 + j); });
  Matrix b(3, 4);
  b.fill([](auto i, auto j) { return static_cast<double>(i + j); });
  Matrix c(2, 4);
  c.zero();
  reference_gemm(2, 4, 3, 1.0, a.data(), a.ld(), true, b.data(), b.ld(), false,
                 0.0, c.data(), c.ld());
  for (std::uint32_t i = 0; i < 2; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      double expect = 0;
      for (std::uint32_t l = 0; l < 3; ++l) expect += a(l, i) * b(l, j);
      ASSERT_DOUBLE_EQ(c(i, j), expect);
    }
  }
}

TEST(ReferenceGemm, BothTransposed) {
  Matrix a(3, 2), b(4, 3), c(2, 4);
  a.fill_random(1);
  b.fill_random(2);
  c.zero();
  reference_gemm(2, 4, 3, 1.0, a.data(), a.ld(), true, b.data(), b.ld(), true,
                 0.0, c.data(), c.ld());
  for (std::uint32_t i = 0; i < 2; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      double expect = 0;
      for (std::uint32_t l = 0; l < 3; ++l) expect += a(l, i) * b(j, l);
      ASSERT_NEAR(c(i, j), expect, 1e-15);
    }
  }
}

}  // namespace
}  // namespace rla
