// Tests of the set-associative cache model and its 3C miss classification.

#include <gtest/gtest.h>

#include "cachesim/cache.hpp"

namespace rla::sim {
namespace {

TEST(Cache, GeometryValidation) {
  EXPECT_THROW(Cache({100, 64, 4, false}), std::invalid_argument);  // not divisible
  EXPECT_THROW(Cache({1024, 60, 2, false}), std::invalid_argument); // line not pow2
  EXPECT_THROW(Cache({1024, 64, 0, false}), std::invalid_argument); // zero ways
  EXPECT_NO_THROW(Cache({1024, 64, 4, false}));
}

TEST(Cache, HitsWithinOneLine) {
  Cache cache({1024, 64, 2, false});
  EXPECT_FALSE(cache.access(0, false));   // cold miss
  EXPECT_TRUE(cache.access(8, false));    // same line
  EXPECT_TRUE(cache.access(63, true));
  EXPECT_FALSE(cache.access(64, false));  // next line
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Cache, DirectMappedConflict) {
  // 1 KB direct-mapped, 64 B lines -> 16 sets. Addresses 0 and 1024 collide.
  Cache cache({1024, 64, 1, false});
  EXPECT_FALSE(cache.access(0, false));
  EXPECT_FALSE(cache.access(1024, false));
  EXPECT_FALSE(cache.access(0, false));  // evicted by 1024
  EXPECT_FALSE(cache.access(1024, false));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().evictions, 3u);  // every miss after the first evicts
}

TEST(Cache, TwoWayToleratesTheSameConflict) {
  Cache cache({2048, 64, 2, false});  // same 16 sets, now two ways
  EXPECT_FALSE(cache.access(0, false));
  EXPECT_FALSE(cache.access(2048, false));
  EXPECT_TRUE(cache.access(0, false));
  EXPECT_TRUE(cache.access(2048, false));
}

TEST(Cache, LruEvictionOrder) {
  Cache cache({2048, 64, 2, false});  // 16 sets, 2 ways
  // Three lines mapping to set 0: lines 0, 16, 32 (line = addr/64).
  cache.access(0, false);
  cache.access(16 * 64, false);
  cache.access(0, false);            // refresh line 0
  cache.access(32 * 64, false);      // evicts LRU = line 16
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(16 * 64));
  EXPECT_TRUE(cache.contains(32 * 64));
}

TEST(Cache, WritebackCounting) {
  Cache cache({1024, 64, 1, false});
  cache.access(0, true);              // dirty
  cache.access(1024, false);          // evicts dirty line -> writeback
  cache.access(2048, false);          // evicts clean line -> no writeback
  EXPECT_EQ(cache.stats().writebacks, 1u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(Cache, Invalidate) {
  Cache cache({1024, 64, 2, false});
  cache.access(128, true);
  EXPECT_TRUE(cache.contains(128));
  EXPECT_TRUE(cache.invalidate(130));  // same line
  EXPECT_FALSE(cache.contains(128));
  EXPECT_FALSE(cache.invalidate(128));  // already gone
}

TEST(Cache, ThreeCClassificationCompulsory) {
  Cache cache({1024, 64, 2, true});
  for (std::uint64_t line = 0; line < 8; ++line) cache.access(line * 64, false);
  EXPECT_EQ(cache.stats().compulsory_misses, 8u);
  EXPECT_EQ(cache.stats().conflict_misses, 0u);
  EXPECT_EQ(cache.stats().capacity_misses, 0u);
}

TEST(Cache, ThreeCClassificationConflict) {
  // Direct-mapped with classification: ping-pong between two lines in one
  // set while the cache is mostly empty => pure conflict misses.
  Cache cache({1024, 64, 1, true});
  cache.access(0, false);
  cache.access(1024, false);
  for (int round = 0; round < 10; ++round) {
    cache.access(0, false);
    cache.access(1024, false);
  }
  EXPECT_EQ(cache.stats().compulsory_misses, 2u);
  EXPECT_EQ(cache.stats().conflict_misses, 20u);
  EXPECT_EQ(cache.stats().capacity_misses, 0u);
}

TEST(Cache, ThreeCClassificationCapacity) {
  // Stream over twice the cache capacity repeatedly: after the cold pass,
  // misses are capacity misses (fully-associative would miss too).
  Cache cache({1024, 64, 16, true});  // fully associative, 16 lines
  const std::uint64_t lines = 32;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t l = 0; l < lines; ++l) cache.access(l * 64, false);
  }
  EXPECT_EQ(cache.stats().compulsory_misses, lines);
  EXPECT_EQ(cache.stats().conflict_misses, 0u);
  EXPECT_EQ(cache.stats().capacity_misses, 2 * lines);
}

TEST(Cache, ResetClearsEverything) {
  Cache cache({1024, 64, 2, true});
  cache.access(0, true);
  cache.access(64, false);
  cache.reset();
  EXPECT_EQ(cache.stats().accesses(), 0u);
  EXPECT_FALSE(cache.contains(0));
  EXPECT_FALSE(cache.access(0, false));
  EXPECT_EQ(cache.stats().compulsory_misses, 1u);  // cold again after reset
}

TEST(Cache, MissRate) {
  Cache cache({1024, 64, 2, false});
  cache.access(0, false);
  cache.access(8, false);
  cache.access(16, false);
  cache.access(24, false);
  EXPECT_DOUBLE_EQ(cache.stats().miss_rate(), 0.25);
}

}  // namespace
}  // namespace rla::sim
