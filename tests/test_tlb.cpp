// Tests of the TLB model.

#include <gtest/gtest.h>

#include "cachesim/tlb.hpp"

namespace rla::sim {
namespace {

TEST(Tlb, Validation) {
  EXPECT_THROW(Tlb({0, 4096}), std::invalid_argument);
  EXPECT_THROW(Tlb({8, 1000}), std::invalid_argument);
  EXPECT_NO_THROW(Tlb({8, 4096}));
}

TEST(Tlb, SamePageHits) {
  Tlb tlb({4, 4096});
  EXPECT_FALSE(tlb.access(0));
  EXPECT_TRUE(tlb.access(100));
  EXPECT_TRUE(tlb.access(4095));
  EXPECT_FALSE(tlb.access(4096));
  EXPECT_EQ(tlb.stats().hits, 2u);
  EXPECT_EQ(tlb.stats().misses, 2u);
}

TEST(Tlb, LruCapacityEviction) {
  Tlb tlb({2, 4096});
  tlb.access(0 * 4096);
  tlb.access(1 * 4096);
  tlb.access(0 * 4096);  // refresh page 0
  tlb.access(2 * 4096);  // evicts page 1
  EXPECT_TRUE(tlb.access(0 * 4096));
  EXPECT_FALSE(tlb.access(1 * 4096));  // was evicted
}

TEST(Tlb, StridedColumnWalkThrashesSmallTlb) {
  // A column walk with a large row stride touches a new page per element —
  // the dilation pathology the paper attributes to canonical layouts.
  Tlb tlb({16, 4096});
  const std::uint64_t row_stride = 8192;  // > page
  tlb.reset();
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t i = 0; i < 64; ++i) tlb.access(i * row_stride);
  }
  EXPECT_DOUBLE_EQ(tlb.stats().miss_rate(), 1.0);

  // The same 64 elements contiguous in one page direction: 2 pages total.
  Tlb dense({16, 4096});
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t i = 0; i < 64; ++i) dense.access(i * 8);
  }
  EXPECT_LT(dense.stats().miss_rate(), 0.05);
}

TEST(Tlb, ResetClears) {
  Tlb tlb({4, 4096});
  tlb.access(0);
  tlb.reset();
  EXPECT_EQ(tlb.stats().accesses(), 0u);
  EXPECT_FALSE(tlb.access(0));
}

}  // namespace
}  // namespace rla::sim
