// Tests of the orientation mapping arrays (paper §4), including the
// Gray-Morton half-rotation symmetry (paper §3.4) that justifies the
// two-half-step addition trick.

#include <gtest/gtest.h>

#include "layout/mapping.hpp"
#include "layout/quadrant.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

TEST(Mapping, GrayHalfRotationSymmetry) {
  // Paper §3.4: the two Gray-Morton orientations order their tiles
  // identically up to a rotation by half the tile count — "two quadrants of
  // opposite orientation differ only in the order in which their top and
  // bottom halves are glued together".
  const CurveOps& ops = CurveOps::get(Curve::GrayMorton);
  ASSERT_EQ(ops.orientations(), 2);
  for (int level = 1; level <= 6; ++level) {
    const std::uint64_t n = std::uint64_t{1} << (2 * level);
    const auto map01 = ops.order_map(0, 1, level);
    const auto map10 = ops.order_map(1, 0, level);
    for (std::uint64_t s = 0; s < n; ++s) {
      ASSERT_EQ(map01[s], (s + n / 2) % n) << "level=" << level << " s=" << s;
      ASSERT_EQ(map10[s], (s + n / 2) % n) << "level=" << level << " s=" << s;
    }
  }
}

TEST(Mapping, HilbertMapsHaveNoHalfRotationShortcut) {
  // The paper keeps full mapping arrays for Hilbert because "there is no
  // simple pattern"; check that at least one orientation pair is not a
  // rotation of any amount.
  const CurveOps& ops = CurveOps::get(Curve::Hilbert);
  bool some_pair_is_not_a_rotation = false;
  const int level = 3;
  const std::uint64_t n = std::uint64_t{1} << (2 * level);
  for (int r1 = 0; r1 < 4 && !some_pair_is_not_a_rotation; ++r1) {
    for (int r2 = 0; r2 < 4 && !some_pair_is_not_a_rotation; ++r2) {
      if (r1 == r2) continue;
      const auto map = ops.order_map(r1, r2, level);
      const std::uint64_t shift = map[0];
      bool is_rotation = true;
      for (std::uint64_t s = 0; s < n; ++s) {
        if (map[s] != (s + shift) % n) {
          is_rotation = false;
          break;
        }
      }
      if (!is_rotation) some_pair_is_not_a_rotation = true;
    }
  }
  EXPECT_TRUE(some_pair_is_not_a_rotation);
}

TEST(Mapping, CachedMapMatchesFreshMap) {
  for (Curve c : {Curve::GrayMorton, Curve::Hilbert}) {
    const CurveOps& ops = CurveOps::get(c);
    for (int r1 = 0; r1 < ops.orientations(); ++r1) {
      for (int r2 = 0; r2 < ops.orientations(); ++r2) {
        const auto& cached = cached_order_map(c, r1, r2, 3);
        EXPECT_EQ(cached, ops.order_map(r1, r2, 3));
      }
    }
  }
}

TEST(Mapping, CachedMapIsStableAcrossCalls) {
  const auto& first = cached_order_map(Curve::Hilbert, 0, 1, 4);
  const auto* first_data = first.data();
  const auto& second = cached_order_map(Curve::Hilbert, 0, 1, 4);
  EXPECT_EQ(first_data, second.data());  // same cached vector
}

TEST(Mapping, MapsComposeCorrectly) {
  // map(r1->r3) == map(r2->r3) ∘ map(r1->r2).
  const CurveOps& ops = CurveOps::get(Curve::Hilbert);
  const int level = 3;
  const auto m01 = ops.order_map(0, 1, level);
  const auto m12 = ops.order_map(1, 2, level);
  const auto m02 = ops.order_map(0, 2, level);
  for (std::uint64_t s = 0; s < m01.size(); ++s) {
    ASSERT_EQ(m02[s], m12[m01[s]]);
  }
}

}  // namespace
}  // namespace rla
