// Unit tests for the bit-manipulation primitives behind the S functions.

#include <gtest/gtest.h>

#include "layout/bits.hpp"
#include "util/rng.hpp"

namespace rla::bits {
namespace {

TEST(Bits, SpreadSmallValues) {
  EXPECT_EQ(spread(0), 0u);
  EXPECT_EQ(spread(1), 1u);
  EXPECT_EQ(spread(0b10), 0b100u);
  EXPECT_EQ(spread(0b11), 0b101u);
  EXPECT_EQ(spread(0b101), 0b10001u);
  EXPECT_EQ(spread(0xFFFFFFFFu), 0x5555555555555555ULL);
}

TEST(Bits, GatherInvertsSpread) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto x = static_cast<std::uint32_t>(rng.next_u64());
    EXPECT_EQ(gather(spread(x)), x);
  }
}

TEST(Bits, GatherIgnoresOddBits) {
  EXPECT_EQ(gather(0b10), 0u);          // odd position dropped
  EXPECT_EQ(gather(0b111), 0b11u);      // bits 0 and 2
  EXPECT_EQ(gather(0xAAAAAAAAAAAAAAAAULL), 0u);
}

TEST(Bits, InterleaveMatchesDefinition) {
  // u ⋈ v places u's bit k at position 2k+1 and v's at 2k (paper §3).
  EXPECT_EQ(interleave(0, 0), 0u);
  EXPECT_EQ(interleave(1, 0), 0b10u);
  EXPECT_EQ(interleave(0, 1), 0b01u);
  EXPECT_EQ(interleave(1, 1), 0b11u);
  EXPECT_EQ(interleave(0b11, 0b00), 0b1010u);
  EXPECT_EQ(interleave(0b10, 0b01), 0b1001u);
}

TEST(Bits, DeinterleaveInvertsInterleave) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto u = static_cast<std::uint32_t>(rng.next_u64());
    const auto v = static_cast<std::uint32_t>(rng.next_u64());
    const auto [ru, rv] = deinterleave(interleave(u, v));
    EXPECT_EQ(ru, u);
    EXPECT_EQ(rv, v);
  }
}

TEST(Bits, GrayCodeFirstEight) {
  const std::uint64_t expected[] = {0, 1, 3, 2, 6, 7, 5, 4};
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(gray(i), expected[i]);
}

TEST(Bits, GrayConsecutiveDifferInOneBit) {
  for (std::uint64_t i = 0; i + 1 < 4096; ++i) {
    EXPECT_EQ(__builtin_popcountll(gray(i) ^ gray(i + 1)), 1) << "i=" << i;
  }
}

TEST(Bits, GrayInverseRoundTrip) {
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::uint64_t x = rng.next_u64();
    EXPECT_EQ(gray_inverse(gray(x)), x);
    EXPECT_EQ(gray(gray_inverse(x)), x);
  }
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 63));
  EXPECT_FALSE(is_pow2((1ULL << 63) + 1));
}

TEST(Bits, FloorCeilLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(floor_log2(1025), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
  EXPECT_EQ(ceil_div(1000, 32), 32u);
}

TEST(Bits, ConstexprUsable) {
  static_assert(interleave(0b11, 0b01) == 0b1011);
  static_assert(gray(5) == 7);
  static_assert(gray_inverse(7) == 5);
  static_assert(next_pow2(17) == 32);
  SUCCEED();
}

}  // namespace
}  // namespace rla::bits
