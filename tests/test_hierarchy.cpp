// Tests of the composed TLB + L1 + L2 hierarchy.

#include <gtest/gtest.h>

#include "cachesim/hierarchy.hpp"

namespace rla::sim {
namespace {

HierarchyConfig small_config() {
  HierarchyConfig cfg;
  cfg.l1 = {1024, 64, 2, false};
  cfg.l2 = {8192, 64, 4, false};
  cfg.tlb = {8, 4096};
  return cfg;
}

TEST(Hierarchy, L1MissGoesToL2) {
  MemoryHierarchy mem(small_config());
  mem.access(0, false);  // L1 miss, L2 miss
  mem.access(0, false);  // L1 hit
  EXPECT_EQ(mem.l1().stats().misses, 1u);
  EXPECT_EQ(mem.l1().stats().hits, 1u);
  EXPECT_EQ(mem.l2().stats().accesses(), 1u);  // only the L1 miss reached L2
}

TEST(Hierarchy, L2CatchesL1ConflictVictims) {
  MemoryHierarchy mem(small_config());
  // Three lines conflicting in L1 set 0 (L1 has 8 sets): lines 0, 8, 16.
  for (int round = 0; round < 4; ++round) {
    mem.access(0, false);
    mem.access(8 * 64, false);
    mem.access(16 * 64, false);
  }
  // L1 thrashes, but L2 (32 sets more capacity) absorbs the repeats.
  EXPECT_GT(mem.l1().stats().misses, 6u);
  EXPECT_EQ(mem.l2().stats().misses, 3u);  // only compulsory
  EXPECT_GT(mem.l2().stats().hits, 0u);
}

TEST(Hierarchy, CycleModelOrdering) {
  const HierarchyConfig cfg = small_config();
  MemoryHierarchy mem(cfg);
  mem.access(0, false);  // TLB miss + memory fill
  const std::uint64_t first = mem.cycles();
  EXPECT_EQ(first, cfg.tlb_miss_cycles + cfg.memory_cycles);
  mem.access(8, false);  // all hits
  EXPECT_EQ(mem.cycles(), first + cfg.l1_hit_cycles);
}

TEST(Hierarchy, CyclesPerAccess) {
  MemoryHierarchy mem(small_config());
  for (int i = 0; i < 16; ++i) mem.access(static_cast<std::uint64_t>(i) * 8, false);
  EXPECT_GT(mem.cpa(), 0.0);
}

TEST(Hierarchy, Reset) {
  MemoryHierarchy mem(small_config());
  mem.access(0, true);
  mem.reset();
  EXPECT_EQ(mem.cycles(), 0u);
  EXPECT_EQ(mem.l1().stats().accesses(), 0u);
  EXPECT_EQ(mem.l2().stats().accesses(), 0u);
  EXPECT_EQ(mem.tlb().stats().accesses(), 0u);
}

}  // namespace
}  // namespace rla::sim
