// Tests of the S functions (paper §3): known orderings, bijectivity,
// self-similarity, quadrant contiguity, and the per-curve structural
// properties the paper states.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

#include "layout/curve.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

std::vector<std::uint64_t> grid(Curve c, int d) {
  const std::uint32_t n = 1u << d;
  std::vector<std::uint64_t> g(static_cast<std::size_t>(n) * n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) g[i * n + j] = s_index(c, i, j, d);
  }
  return g;
}

TEST(Curves, ZMortonKnownGrid4x4) {
  const std::vector<std::uint64_t> expected = {
      0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15};
  EXPECT_EQ(grid(Curve::ZMorton, 2), expected);
}

TEST(Curves, UMortonKnownGrid4x4) {
  const std::vector<std::uint64_t> expected = {
      0, 3, 12, 15, 1, 2, 13, 14, 4, 7, 8, 11, 5, 6, 9, 10};
  EXPECT_EQ(grid(Curve::UMorton, 2), expected);
}

TEST(Curves, XMortonKnownGrid4x4) {
  const std::vector<std::uint64_t> expected = {
      0, 3, 12, 15, 2, 1, 14, 13, 8, 11, 4, 7, 10, 9, 6, 5};
  EXPECT_EQ(grid(Curve::XMorton, 2), expected);
}

TEST(Curves, GrayMortonKnownGrid4x4) {
  const std::vector<std::uint64_t> expected = {
      0, 1, 6, 7, 3, 2, 5, 4, 12, 13, 10, 11, 15, 14, 9, 8};
  EXPECT_EQ(grid(Curve::GrayMorton, 2), expected);
}

TEST(Curves, CanonicalGrids) {
  const std::uint32_t n = 4;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      EXPECT_EQ(s_index(Curve::ColMajor, i, j, 2), j * n + i);
      EXPECT_EQ(s_index(Curve::RowMajor, i, j, 2), i * n + j);
    }
  }
}

TEST(Curves, OriginIsZeroForAllCurves) {
  // Paper convention: S(0,0) = 0 for every layout.
  for (Curve c : kAllCurves) {
    for (int d = 1; d <= 6; ++d) {
      EXPECT_EQ(s_index(c, 0, 0, d), 0u) << curve_name(c) << " d=" << d;
    }
  }
}

TEST(Curves, HilbertAdjacency) {
  // Consecutive Hilbert positions are 4-neighbours (the defining property;
  // none of the Morton variants has it).
  for (int d = 1; d <= 6; ++d) {
    const std::uint64_t n = std::uint64_t{1} << (2 * d);
    TileCoord prev = s_inverse(Curve::Hilbert, 0, d);
    for (std::uint64_t s = 1; s < n; ++s) {
      const TileCoord cur = s_inverse(Curve::Hilbert, s, d);
      const int di = std::abs(static_cast<int>(cur.i) - static_cast<int>(prev.i));
      const int dj = std::abs(static_cast<int>(cur.j) - static_cast<int>(prev.j));
      ASSERT_EQ(di + dj, 1) << "d=" << d << " s=" << s;
      prev = cur;
    }
  }
}

TEST(Curves, ZMortonLacksAdjacency) {
  // Sanity check that the adjacency property above is not vacuous.
  const TileCoord a = s_inverse(Curve::ZMorton, 1, 2);
  const TileCoord b = s_inverse(Curve::ZMorton, 2, 2);
  const int dist = std::abs(static_cast<int>(a.i) - static_cast<int>(b.i)) +
                   std::abs(static_cast<int>(a.j) - static_cast<int>(b.j));
  EXPECT_GT(dist, 1);
}

class CurveDepthTest : public ::testing::TestWithParam<std::tuple<Curve, int>> {};

TEST_P(CurveDepthTest, Bijection) {
  const auto [c, d] = GetParam();
  const std::uint32_t side = 1u << d;
  std::set<std::uint64_t> seen;
  for (std::uint32_t i = 0; i < side; ++i) {
    for (std::uint32_t j = 0; j < side; ++j) {
      const std::uint64_t s = s_index(c, i, j, d);
      ASSERT_LT(s, std::uint64_t{1} << (2 * d));
      ASSERT_TRUE(seen.insert(s).second) << "duplicate S at " << i << "," << j;
    }
  }
}

TEST_P(CurveDepthTest, InverseRoundTrip) {
  const auto [c, d] = GetParam();
  const std::uint64_t n = std::uint64_t{1} << (2 * d);
  for (std::uint64_t s = 0; s < n; ++s) {
    const TileCoord tc = s_inverse(c, s, d);
    ASSERT_EQ(s_index(c, tc.i, tc.j, d), s) << curve_name(c) << " s=" << s;
  }
}

TEST_P(CurveDepthTest, QuadrantContiguity) {
  // Aligned quadrants occupy contiguous quarters of the curve range for
  // every recursive layout (the basis of streaming additions, paper §4).
  const auto [c, d] = GetParam();
  if (!is_recursive(c) || d < 1) return;
  const std::uint32_t h = 1u << (d - 1);
  for (std::uint32_t qi = 0; qi < 2; ++qi) {
    for (std::uint32_t qj = 0; qj < 2; ++qj) {
      std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
      for (std::uint32_t i = 0; i < h; ++i) {
        for (std::uint32_t j = 0; j < h; ++j) {
          const std::uint64_t s = s_index(c, qi * h + i, qj * h + j, d);
          lo = std::min(lo, s);
          hi = std::max(hi, s);
        }
      }
      EXPECT_EQ(hi - lo + 1, std::uint64_t{h} * h);
      EXPECT_EQ(lo % (std::uint64_t{h} * h), 0u);
    }
  }
}

TEST_P(CurveDepthTest, SelfSimilarNorthwestForMortonFamily) {
  // The d-independent bit formulas nest: the NW quadrant of a depth-d grid
  // is ordered exactly like the full depth-(d-1) grid for U/X/Z/Gray.
  const auto [c, d] = GetParam();
  if (d < 2 || c == Curve::Hilbert || !is_recursive(c)) return;
  const std::uint32_t h = 1u << (d - 1);
  for (std::uint32_t i = 0; i < h; ++i) {
    for (std::uint32_t j = 0; j < h; ++j) {
      EXPECT_EQ(s_index(c, i, j, d), s_index(c, i, j, d - 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCurves, CurveDepthTest,
    ::testing::Combine(::testing::ValuesIn(kAllCurves),
                       ::testing::Values(1, 2, 3, 4, 5)),
    [](const ::testing::TestParamInfo<CurveDepthTest::ParamType>& info) {
      return rla::testing::sanitize(curve_name(std::get<0>(info.param))) + "_d" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Curves, BitLocalityOfSingleOrientationLayouts) {
  // Paper §3.4: for U/X/Z, bits 2u+1 and 2u of S depend only on bit u of i
  // and j — so flipping low bits of (i, j) never changes high bits of S.
  for (Curve c : {Curve::UMorton, Curve::XMorton, Curve::ZMorton}) {
    const int d = 5;
    for (std::uint32_t i = 0; i < 32; ++i) {
      for (std::uint32_t j = 0; j < 32; ++j) {
        const std::uint64_t hi = s_index(c, i, j, d) >> 4;
        const std::uint64_t hi_masked = s_index(c, i & ~3u, j & ~3u, d) >> 4;
        ASSERT_EQ(hi, hi_masked) << curve_name(c);
      }
    }
  }
}

TEST(Curves, ParseNames) {
  Curve c;
  EXPECT_TRUE(parse_curve("z-morton", c));
  EXPECT_EQ(c, Curve::ZMorton);
  EXPECT_TRUE(parse_curve("Hilbert", c));
  EXPECT_EQ(c, Curve::Hilbert);
  EXPECT_TRUE(parse_curve("GRAY", c));
  EXPECT_EQ(c, Curve::GrayMorton);
  EXPECT_TRUE(parse_curve("u", c));
  EXPECT_EQ(c, Curve::UMorton);
  EXPECT_TRUE(parse_curve("x_morton", c));
  EXPECT_EQ(c, Curve::XMorton);
  EXPECT_TRUE(parse_curve("canonical", c));
  EXPECT_EQ(c, Curve::ColMajor);
  EXPECT_TRUE(parse_curve("rowmajor", c));
  EXPECT_EQ(c, Curve::RowMajor);
  EXPECT_FALSE(parse_curve("peano", c));
}

TEST(Curves, NamesRoundTrip) {
  for (Curve c : kAllCurves) {
    Curve parsed;
    ASSERT_TRUE(parse_curve(curve_name(c), parsed)) << curve_name(c);
    EXPECT_EQ(parsed, c);
  }
}

}  // namespace
}  // namespace rla
