// Tests of the observability subsystem (src/obs): scheduler counters, the
// task-span tracer and its Chrome-trace export, GemmProfile JSON round-trip,
// the disabled-path overhead guard, and composition with fault injection,
// cancellation and the analysis modes.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/gemm.hpp"
#include "obs/collector.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "parallel/worker_pool.hpp"
#include "robust/error.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

using rla::testing::random_matrix;

bool trail_contains(const GemmProfile& profile, std::string_view needle) {
  for (const std::string& step : profile.degradation_trail) {
    if (step.find(needle) != std::string::npos) return true;
  }
  return false;
}

/// One C = A·B on fresh random operands; returns the profile.
GemmProfile run_profiled(std::uint32_t n, GemmConfig cfg) {
  Matrix a = random_matrix(n, n, 7), b = random_matrix(n, n, 8);
  Matrix c(n, n);
  c.zero();
  GemmProfile profile;
  gemm(n, n, n, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
       0.0, c.data(), c.ld(), cfg, &profile);
  return profile;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Parse a Chrome trace and count events by (ph, cat).
struct TraceShape {
  std::uint64_t tasks = 0, phases = 0, spawns = 0, total = 0;
  bool valid = false;
};

TraceShape parse_trace(const std::string& text) {
  TraceShape shape;
  auto doc = obs::json::Value::parse(text);
  if (!doc || doc->kind() != obs::json::Value::Kind::Object) return shape;
  const auto* events = doc->find("traceEvents");
  if (events == nullptr || events->kind() != obs::json::Value::Kind::Array)
    return shape;
  shape.valid = true;
  for (const auto& ev : events->items()) {
    ++shape.total;
    const auto* cat = ev.find("cat");
    if (cat == nullptr) continue;
    if (cat->as_string() == "task") ++shape.tasks;
    if (cat->as_string() == "phase") ++shape.phases;
    if (cat->as_string() == "spawn") ++shape.spawns;
  }
  return shape;
}

// ---------------------------------------------------------------------------
// Scheduler counters.

TEST(SchedStats, SerialPoolReportsZeroFailedStealsAndIdleWakeups) {
  WorkerPool pool(0);
  TaskGroup group(pool);
  for (int i = 0; i < 32; ++i) group.spawn([] {});
  group.wait();
  EXPECT_EQ(pool.failed_steals(), 0u);
  EXPECT_EQ(pool.idle_wakeups(), 0u);
  EXPECT_EQ(pool.injection_pops(), 0u);
  EXPECT_EQ(pool.steals(), 0u);
  // Serial pools expose only the external slot, and it never moved.
  const auto snapshot = pool.sched_snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].steals, 0u);
  EXPECT_EQ(snapshot[0].failed_steals, 0u);
  EXPECT_EQ(snapshot[0].idle_wakeups, 0u);
  EXPECT_EQ(snapshot[0].deque_high_water, 0);
}

TEST(SchedStats, SnapshotHasOneSlotPerWorkerPlusExternal) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 64; ++i) group.spawn([&] { ++ran; });
    group.wait();
  }
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(pool.sched_snapshot().size(), pool.thread_count() + 1u);
  // The aggregate accessors are sums over the snapshot slots.
  std::uint64_t failed = 0, wakeups = 0, pops = 0;
  for (const auto& s : pool.sched_snapshot()) {
    failed += s.failed_steals;
    wakeups += s.idle_wakeups;
    pops += s.injection_pops;
  }
  EXPECT_EQ(failed, pool.failed_steals());
  EXPECT_EQ(wakeups, pool.idle_wakeups());
  EXPECT_EQ(pops, pool.injection_pops());
}

// ---------------------------------------------------------------------------
// Metrics primitives.

TEST(Metrics, HistogramBucketsAndQuantiles) {
  obs::Histogram h;
  for (std::uint64_t v : {1u, 2u, 3u, 100u, 1000u}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1106u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_GE(h.quantile(0.99), 1000u);
  EXPECT_LE(h.quantile(0.0), 3u);
}

TEST(Metrics, RegistrySnapshotIsValidJson) {
  obs::Registry reg;
  reg.counter("c.one").add(41);
  reg.gauge("g.depth").fold_max(7);
  reg.histogram("h.ns").record(512);
  const auto snap = reg.snapshot();
  const std::string text = snap.dump();
  auto parsed = obs::json::Value::parse(text);
  ASSERT_TRUE(parsed.has_value());
  const auto* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("c.one"), nullptr);
  EXPECT_EQ(counters->find("c.one")->as_int(), 41);
}

// ---------------------------------------------------------------------------
// GemmProfile JSON round-trip.

TEST(ProfileJson, RoundTripsEveryField) {
  GemmProfile p;
  p.convert_in = 0.125;
  p.compute = 2.5;
  p.convert_out = 0.0625;
  p.total = 2.6875;
  p.depth = 5;
  p.tile_m = 24;
  p.tile_k = 25;
  p.tile_n = 26;
  p.splits = 3;
  p.degradation_trail = {"alloc:fast->serial-lowmem", "trace:busy"};
  p.degradations = 2;
  p.verify_probes = 4;
  p.verify_max_residual = 1.5e-9;
  p.verify_failed = true;
  p.verify_rerun = true;
  p.races = 2;
  p.race_certified = true;
  p.race_cells = 77;
  p.race_reports = {"W-W c[0,0]", "R-W c[1,1]"};
  p.bound_constant = 640.0;
  p.error_bound = 7.1e-14;
  p.bound_fast_levels = 2;
  p.numerics_analyzed = true;
  p.observed_abs_error = 3e-13;
  p.observed_rel_error = 4.5e-15;
  p.cancellations = 12;
  p.shadow_cells = 4096;
  p.worst_cell_path = "R.NW.SE";
  p.fp_hazards = 5;
  p.fp_degraded = true;
  p.sched.workers = 4;
  p.sched.tasks = 1006;
  p.sched.steals = 13;
  p.sched.failed_steals = 99;
  p.sched.idle_wakeups = 17;
  p.sched.injection_pops = 33363;
  p.sched.deque_high_water = 21;
  p.measured = true;
  p.measured_work = 0.0884;
  p.measured_span = 0.0345;
  p.achieved_parallelism = 2.56;
  p.parallel_slackness = 0.64;
  p.tasks_traced = 1006;
  p.trace_events_dropped = 42;
  p.trace_file = "/tmp/t.json";
  p.task_ns_hist = {0, 1, 5, 9, 100};
  p.model_work = 1.0e9;
  p.model_span = 310000.0;
  p.model_parallelism = 3224.0;
  p.hw_measured = true;
  p.hw_scale = 0.75;
  p.hw_events = {"cycles", "l1d_read_misses", "task_clock_ns"};
  p.hw_total.cycles = 123456789;
  p.hw_total.instructions = 987654321;
  p.hw_total.l1d_read_misses = 4242;
  p.hw_total.llc_misses = 17;
  p.hw_total.dtlb_misses = 3;
  p.hw_total.task_clock_ns = 55555555;
  GemmProfile::HwCounters compute_hw;
  compute_hw.cycles = 100000000;
  compute_hw.l1d_read_misses = 4000;
  p.hw_phases = {{"convert.in", GemmProfile::HwCounters{}},
                 {"compute", compute_hw}};

  const std::string once = p.to_json();
  GemmProfile q;
  ASSERT_TRUE(GemmProfile::from_json(once, q));
  // Exact string equality: every field survived with its exact value, in
  // the same order — the documented to_json/from_json contract.
  EXPECT_EQ(q.to_json(), once);
  // Spot checks that parsing actually populated fields (not just echoed).
  EXPECT_EQ(q.sched.injection_pops, 33363u);
  EXPECT_EQ(q.degradation_trail.size(), 2u);
  EXPECT_EQ(q.worst_cell_path, "R.NW.SE");
  EXPECT_DOUBLE_EQ(q.achieved_parallelism, 2.56);
  ASSERT_EQ(q.task_ns_hist.size(), 5u);
  EXPECT_EQ(q.task_ns_hist[4], 100u);
  EXPECT_TRUE(q.hw_measured);
  EXPECT_DOUBLE_EQ(q.hw_scale, 0.75);
  ASSERT_EQ(q.hw_events.size(), 3u);
  EXPECT_EQ(q.hw_events[1], "l1d_read_misses");
  EXPECT_EQ(q.hw_total.cycles, 123456789u);
  EXPECT_EQ(q.hw_total.task_clock_ns, 55555555u);
  ASSERT_EQ(q.hw_phases.size(), 2u);
  EXPECT_EQ(q.hw_phases[1].first, "compute");
  EXPECT_EQ(q.hw_phases[1].second.l1d_read_misses, 4000u);
}

TEST(ProfileJson, DefaultProfileRoundTripsAndRejectsGarbage) {
  GemmProfile p;
  const std::string once = p.to_json();
  GemmProfile q;
  ASSERT_TRUE(GemmProfile::from_json(once, q));
  EXPECT_EQ(q.to_json(), once);
  GemmProfile untouched;
  untouched.depth = 123;
  EXPECT_FALSE(GemmProfile::from_json("not json", untouched));
  EXPECT_FALSE(GemmProfile::from_json("[1,2,3]", untouched));
  EXPECT_EQ(untouched.depth, 123);  // failed parse leaves *out alone
}

// ---------------------------------------------------------------------------
// Tracer: disabled-path guard, measured run, trace file, env arming.

TEST(Tracer, UntracedRunCreatesNoBuffers) {
  const std::uint64_t before = obs::Collector::buffers_created();
  GemmConfig cfg;
  cfg.threads = 2;
  const GemmProfile profile = run_profiled(96, cfg);
  EXPECT_FALSE(profile.measured);
  EXPECT_EQ(profile.tasks_traced, 0u);
  EXPECT_EQ(obs::Collector::buffers_created(), before);
}

TEST(Tracer, MeasuredRunReportsParallelismAndSchedStats) {
  GemmConfig cfg;
  cfg.threads = 4;
  cfg.measure = true;
  const GemmProfile profile = run_profiled(256, cfg);
  EXPECT_TRUE(profile.measured);
  EXPECT_GT(profile.tasks_traced, 10u);
  EXPECT_GT(profile.measured_work, 0.0);
  EXPECT_GT(profile.measured_span, 0.0);
  // The DAG's measured parallelism is schedule-independent (span folds over
  // the logical fork-join structure), so this holds even on one CPU.
  EXPECT_GT(profile.achieved_parallelism, 1.5);
  EXPECT_DOUBLE_EQ(
      profile.parallel_slackness,
      profile.achieved_parallelism / static_cast<double>(profile.sched.workers));
  EXPECT_EQ(profile.sched.workers, 4u);
  EXPECT_GT(profile.sched.tasks, 0u);
  EXPECT_FALSE(profile.task_ns_hist.empty());
  EXPECT_TRUE(profile.trace_file.empty());  // measure alone writes no file
}

TEST(Tracer, TraceFileIsValidChromeTraceWithPhases) {
  const std::string path = ::testing::TempDir() + "test_obs_trace.json";
  GemmConfig cfg;
  cfg.threads = 2;
  cfg.trace_path = path;
  const GemmProfile profile = run_profiled(128, cfg);
  EXPECT_TRUE(profile.measured);  // trace implies measure
  EXPECT_EQ(profile.trace_file, path);
  const TraceShape shape = parse_trace(slurp(path));
  ASSERT_TRUE(shape.valid);
  EXPECT_GT(shape.tasks, 0u);
  EXPECT_GT(shape.phases, 0u);
  EXPECT_GT(shape.spawns, 0u);
  // Complete trace: every closed task frame has its event in the ring.
  if (profile.trace_events_dropped == 0) {
    EXPECT_EQ(shape.tasks, profile.tasks_traced);
  }
  std::remove(path.c_str());
}

TEST(Tracer, RlaTraceEnvironmentVariableArmsTheCollector) {
  const std::string path = ::testing::TempDir() + "test_obs_env_trace.json";
  ASSERT_EQ(setenv("RLA_TRACE", path.c_str(), 1), 0);
  GemmConfig cfg;
  cfg.threads = 2;
  const GemmProfile profile = run_profiled(96, cfg);
  unsetenv("RLA_TRACE");
  EXPECT_TRUE(profile.measured);
  EXPECT_EQ(profile.trace_file, path);
  EXPECT_TRUE(parse_trace(slurp(path)).valid);
  std::remove(path.c_str());
}

TEST(Tracer, SecondCollectorRunsUntracedWithBusyTrail) {
  obs::Collector outer;
  ASSERT_TRUE(outer.try_attach());
  GemmConfig cfg;
  cfg.threads = 2;
  cfg.measure = true;
  const GemmProfile profile = run_profiled(96, cfg);
  outer.detach();
  EXPECT_FALSE(profile.measured);
  EXPECT_TRUE(trail_contains(profile, "trace:busy"));
}

// ---------------------------------------------------------------------------
// Composition: cancellation, injected faults, analysis modes.

TEST(Tracer, BalancedUnderTaskGroupCancellation) {
  obs::Collector collector;
  ASSERT_TRUE(collector.try_attach());
  {
    obs::ScopedRoot root("cancel-test");
    WorkerPool pool(2);
    std::atomic<bool> cancel{false};
    TaskGroup group(pool, &cancel);
    for (int i = 0; i < 16; ++i) {
      group.spawn([&group, i] {
        if (i == 3) throw std::runtime_error("boom");
        if (group.cancelled()) return;
      });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
    EXPECT_TRUE(cancel.load());
  }
  collector.detach();
  // Every span closed despite the throw: frames balanced, work recorded,
  // and the export is still well-formed JSON.
  EXPECT_GT(collector.tasks(), 0u);
  EXPECT_GE(collector.work_ns(), 0);
  EXPECT_GT(collector.span_ns(), 0);
  std::ostringstream out;
  collector.write_chrome_trace(out);
  const TraceShape shape = parse_trace(out.str());
  ASSERT_TRUE(shape.valid);
  EXPECT_EQ(shape.tasks, collector.tasks());
}

TEST(Tracer, TraceSurvivesInjectedTaskFault) {
  const std::string path = ::testing::TempDir() + "test_obs_fault_trace.json";
  GemmConfig cfg;
  cfg.threads = 2;
  cfg.trace_path = path;
  cfg.fault_spec = "task.throw:nth=5";
  Matrix a = random_matrix(96, 96, 1), b = random_matrix(96, 96, 2);
  Matrix c(96, 96);
  c.zero();
  GemmProfile profile;
  EXPECT_THROW(gemm(96, 96, 96, 1.0, a.data(), a.ld(), Op::None, b.data(),
                    b.ld(), Op::None, 0.0, c.data(), c.ld(), cfg, &profile),
               Error);
  // The driver's exit path still detached the collector and wrote the
  // trace; spans closed despite the unwinding tasks.
  EXPECT_TRUE(profile.measured);
  EXPECT_EQ(profile.trace_file, path);
  EXPECT_TRUE(parse_trace(slurp(path)).valid);
  std::remove(path.c_str());
  // The collector slot was released: a following traced run attaches fine.
  obs::Collector probe;
  EXPECT_TRUE(probe.try_attach());
  probe.detach();
}

TEST(Tracer, ComposesWithRaceDetectionAndFpCheck) {
  GemmConfig cfg;
  cfg.threads = 2;
  cfg.measure = true;
  cfg.detect_races = true;  // forces the serial schedule
  cfg.fp_check = true;
  const GemmProfile profile = run_profiled(64, cfg);
  EXPECT_TRUE(profile.measured);
  EXPECT_GT(profile.tasks_traced, 0u);
  // Serial schedule: measured parallelism is still the DAG's, not 1.0.
  EXPECT_GT(profile.achieved_parallelism, 1.0);
}

}  // namespace
}  // namespace rla
