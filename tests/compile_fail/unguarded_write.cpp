// Negative-compile case: writing a guarded field without holding its mutex.
// Expected diagnostic: -Wthread-safety-analysis "requires holding mutex
// exclusively".
#include "support/sync.hpp"

namespace {

struct Counter {
  rla::Mutex mu;  // lock-level: registry
  int value RLA_GUARDED_BY(mu) = 0;

  void bump_unlocked() { ++value; }  // BAD: mu not held
};

}  // namespace

int main() {
  Counter c;
  c.bump_unlocked();
  return 0;
}
