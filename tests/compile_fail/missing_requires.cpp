// Negative-compile case: calling an RLA_REQUIRES function without holding
// the capability it names. Expected diagnostic: -Wthread-safety-analysis
// "calling function ... requires holding mutex".
#include "support/sync.hpp"

namespace {

struct State {
  rla::Mutex mu;  // lock-level: registry
  int x RLA_GUARDED_BY(mu) = 0;

  void bump_locked() RLA_REQUIRES(mu) { ++x; }
};

void caller(State& s) {
  s.bump_locked();  // BAD: caller does not hold s.mu
}

}  // namespace

int main() {
  State s;
  caller(s);
  return 0;
}
