// Lint-negative case (not compiled): a notify site without a
// `// publishes:` comment naming the guarded state it makes visible.
// tools/check_locks.py must flag this file (rule R5); ctest runs it as a
// WILL_FAIL test.
#include "support/sync.hpp"

namespace bad {

struct Gate {
  rla::Mutex gate_mu;  // lock-level: registry
  rla::CondVar open_cv;
  bool open RLA_GUARDED_BY(gate_mu) = false;

  void unlatch() {
    {
      rla::MutexLock lock(gate_mu);
      open = true;
    }
    open_cv.notify_all();  // BAD: which guarded state did this publish?
  }
};

}  // namespace bad

int main() {
  bad::Gate g;
  g.unlatch();
  return 0;
}
