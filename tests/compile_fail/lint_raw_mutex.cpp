// Lint-negative case (not compiled): raw std primitives outside
// src/support/sync.hpp. tools/check_locks.py must flag this file (rule R1);
// ctest runs it as a WILL_FAIL test.
#include <mutex>

namespace bad {

std::mutex raw_mutex;  // BAD: use rla::Mutex

void touch() {
  std::lock_guard<std::mutex> lock(raw_mutex);  // BAD: use rla::MutexLock
}

}  // namespace bad

int main() {
  bad::touch();
  return 0;
}
