// Negative-compile case: acquiring a mutex already held by the same scope
// (self-deadlock with std::mutex). Expected diagnostic:
// -Wthread-safety-analysis "acquiring mutex ... that is already held".
#include "support/sync.hpp"

namespace {

rla::Mutex gate_mu;  // lock-level: registry

void self_deadlock() {
  rla::MutexLock outer(gate_mu);
  rla::MutexLock inner(gate_mu);  // BAD: gate_mu is already held
}

}  // namespace

int main() {
  self_deadlock();
  return 0;
}
