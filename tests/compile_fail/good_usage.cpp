// Positive control for the negative-compile harness: idiomatic use of every
// primitive. If this file does not compile cleanly under
// -Werror=thread-safety, the harness is broken (or the annotations are),
// and the "failures" of the BAD cases prove nothing.
#include "support/sync.hpp"

namespace {

struct Queue {
  rla::Mutex queue_mu;  // lock-level: registry
  rla::CondVar item_cv;
  int items RLA_GUARDED_BY(queue_mu) = 0;

  void push() RLA_EXCLUDES(queue_mu) {
    {
      rla::MutexLock lock(queue_mu);
      ++items;
    }
    item_cv.notify_one();  // publishes: items
  }

  int pop() RLA_EXCLUDES(queue_mu) {
    rla::MutexLock lock(queue_mu);
    item_cv.wait(queue_mu, lock,
                 [this]() RLA_REQUIRES(queue_mu) { return items > 0; });
    return --items;
  }

  int peek() RLA_EXCLUDES(queue_mu) {
    rla::MutexLock lock(queue_mu);
    const int n = items;
    lock.unlock();  // manual release: the analysis tracks the state
    return n;
  }
};

}  // namespace

int main() {
  Queue q;
  q.push();
  if (q.peek() != 1) return 1;
  return q.pop() == 0 ? 0 : 1;
}
