// Negative-compile case: reading a guarded field without holding its mutex.
// Expected diagnostic: -Wthread-safety-analysis "requires holding mutex".
#include "support/sync.hpp"

namespace {

struct Counter {
  rla::Mutex mu;  // lock-level: registry
  int value RLA_GUARDED_BY(mu) = 0;

  int read_unlocked() { return value; }  // BAD: mu not held
};

}  // namespace

int main() {
  Counter c;
  return c.read_unlocked();
}
