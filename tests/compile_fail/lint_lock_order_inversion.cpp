// Lint-negative case (not compiled): acquiring a higher-ranked lock while
// holding a lower-ranked one inverts the declared hierarchy
// lifecycle -> service -> pool -> arena -> registry.
// tools/check_locks.py must flag this file (rule R3); ctest runs it as a
// WILL_FAIL test.
#include "support/sync.hpp"

namespace bad {

struct Engine {
  rla::Mutex admit_mutex;  // lock-level: service
  rla::Mutex stats_mutex;  // lock-level: registry
  int admitted RLA_GUARDED_BY(admit_mutex) = 0;
  int counted RLA_GUARDED_BY(stats_mutex) = 0;

  void invert() {
    rla::MutexLock stats(stats_mutex);
    rla::MutexLock admit(admit_mutex);  // BAD: registry -> service climbs up
    ++admitted;
    ++counted;
  }
};

}  // namespace bad

int main() {
  bad::Engine e;
  e.invert();
  return 0;
}
