// Negative-compile case: CondVar::wait is RLA_REQUIRES(mu), so waiting
// without the mutex held must not compile. Expected diagnostic:
// -Wthread-safety-analysis "requires holding mutex".
#include "support/sync.hpp"

namespace {

struct Gate {
  rla::Mutex mu;  // lock-level: registry
  rla::CondVar ready_cv;
  bool ready RLA_GUARDED_BY(mu) = false;

  void bad_wait(rla::MutexLock& lock) {
    // BAD: this function never acquired mu, yet hands it to wait().
    ready_cv.wait(mu, lock, [this]() RLA_REQUIRES(mu) { return ready; });
  }
};

}  // namespace

int main() {
  Gate g;
  rla::MutexLock lock(g.mu);
  g.bad_wait(lock);
  return 0;
}
