// Tests of the fault-injection harness, the graceful-degradation ladder in
// the gemm driver, the work-stealing runtime's failure semantics, and the
// Freivalds verification pass.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <new>
#include <stdexcept>
#include <vector>

#include "core/gemm.hpp"
#include "parallel/worker_pool.hpp"
#include "robust/error.hpp"
#include "robust/fault.hpp"
#include "robust/verify.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

using rla::testing::random_matrix;

/// Run cfg against the naive reference on a fresh random problem; returns
/// the max elementwise deviation. Mirrors gemm_vs_reference but keeps the
/// profile so tests can assert on the degradation trail.
double run_vs_reference(std::uint32_t m, std::uint32_t n, std::uint32_t k,
                        double alpha, double beta, const GemmConfig& cfg,
                        GemmProfile* profile = nullptr, std::uint64_t seed = 42) {
  Matrix a = random_matrix(m, k, seed);
  Matrix b = random_matrix(k, n, seed + 1);
  Matrix c = random_matrix(m, n, seed + 2);
  Matrix c_ref = c;
  gemm(m, n, k, alpha, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
       beta, c.data(), c.ld(), cfg, profile);
  reference_gemm(m, n, k, alpha, a.data(), a.ld(), false, b.data(), b.ld(),
                 false, beta, c_ref.data(), c_ref.ld());
  return max_abs_diff(c.view(), c_ref.view());
}

bool trail_contains(const GemmProfile& profile, std::string_view needle) {
  for (const std::string& step : profile.degradation_trail) {
    if (step.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Plan parsing and arming.

TEST(FaultPlan, ParsesSitesTriggersAndSeed) {
  fault::FaultPlan plan;
  ASSERT_TRUE(fault::parse_plan(
      "alloc.tiled:nth=3;kernel.corrupt:p=0.25;seed=99", plan));
  EXPECT_EQ(plan.at(fault::Site::AllocTiled).mode, fault::Trigger::Mode::Nth);
  EXPECT_EQ(plan.at(fault::Site::AllocTiled).nth, 3u);
  EXPECT_EQ(plan.at(fault::Site::KernelCorrupt).mode,
            fault::Trigger::Mode::Probability);
  EXPECT_DOUBLE_EQ(plan.at(fault::Site::KernelCorrupt).probability, 0.25);
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_EQ(plan.at(fault::Site::TaskThrow).mode, fault::Trigger::Mode::Off);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  fault::FaultPlan plan;
  std::string error;
  EXPECT_FALSE(fault::parse_plan("bogus.site:nth=1", plan, &error));  // rla-lint: bad-site-ok
  EXPECT_NE(error.find("unknown site"), std::string::npos);
  EXPECT_FALSE(fault::parse_plan("alloc.tiled", plan, &error));
  EXPECT_FALSE(fault::parse_plan("alloc.tiled:nth=0", plan, &error));
  EXPECT_FALSE(fault::parse_plan("alloc.tiled:p=1.5", plan, &error));
  EXPECT_FALSE(fault::parse_plan("alloc.tiled:whenever", plan, &error));
  EXPECT_FALSE(fault::parse_plan("seed=notanumber", plan, &error));
  try {
    fault::ScopedPlan bad("nope:nth=1");  // rla-lint: bad-site-ok
    FAIL() << "expected rla::Error{Config}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Config);
    EXPECT_EQ(e.site(), "fault.spec");
  }
}

TEST(FaultPlan, RejectsOutOfDomainTriggersInsteadOfClamping) {
  fault::FaultPlan plan;
  std::string error;
  // Negative and >1 probabilities must be rejected, not clamped — a clamped
  // p=-0.3 silently becomes "never fires" and p=1.5 "always fires", both of
  // which falsify what the chaos schedule claims to have tested.
  EXPECT_FALSE(fault::parse_plan("alloc.tiled:p=-0.3", plan, &error));
  EXPECT_NE(error.find("probability"), std::string::npos);
  EXPECT_FALSE(fault::parse_plan("alloc.tiled:p=1.0001", plan, &error));
  EXPECT_FALSE(fault::parse_plan("alloc.tiled:p=nan", plan, &error));
  EXPECT_FALSE(fault::parse_plan("alloc.tiled:p=inf", plan, &error));
  // Non-numeric counts must not strtoull-wrap into huge positives.
  EXPECT_FALSE(fault::parse_plan("alloc.tiled:nth=-1", plan, &error));
  EXPECT_FALSE(fault::parse_plan("alloc.tiled:nth=1x", plan, &error));
  EXPECT_FALSE(fault::parse_plan("seed=-7", plan, &error));
  // Domain edges stay accepted.
  EXPECT_TRUE(fault::parse_plan("alloc.tiled:p=0", plan));
  EXPECT_TRUE(fault::parse_plan("alloc.tiled:p=1", plan));
}

TEST(FaultPlan, ProbabilisticTriggersAreStatelessPerHitIndex) {
  // The decision for hit i must be a pure function of (seed, site, i): two
  // arms of the same plan replay the identical fault pattern, which is what
  // makes concurrent chaos schedules reproducible.
  std::vector<bool> first, second;
  {
    fault::ScopedPlan guard("task.throw:p=0.5;seed=1234");
    for (int i = 0; i < 64; ++i) {
      first.push_back(fault::should_fail(fault::Site::TaskThrow));
    }
  }
  {
    fault::ScopedPlan guard("task.throw:p=0.5;seed=1234");
    for (int i = 0; i < 64; ++i) {
      second.push_back(fault::should_fail(fault::Site::TaskThrow));
    }
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
  // A different seed produces a different pattern (with 2^-64 luck).
  std::vector<bool> reseeded;
  {
    fault::ScopedPlan guard("task.throw:p=0.5;seed=99");
    for (int i = 0; i < 64; ++i) {
      reseeded.push_back(fault::should_fail(fault::Site::TaskThrow));
    }
  }
  EXPECT_NE(first, reseeded);
}

TEST(FaultPlan, DisarmedSitesNeverFire) {
  fault::disarm();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fault::should_fail(fault::Site::AllocTiled));
  }
}

TEST(FaultPlan, NthTriggerFiresExactlyOnce) {
  fault::ScopedPlan guard("task.throw:nth=3");
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (fault::should_fail(fault::Site::TaskThrow)) ++fired;
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(fault::hits(fault::Site::TaskThrow), 10u);
}

// ---------------------------------------------------------------------------
// Allocation-failure degradation in the gemm driver.

TEST(FaultGemm, AllocTiledFailureDegradesAndStaysCorrect) {
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.fault_spec = "alloc.tiled:nth=1";
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(96, 96, 96, 1.0, 0.5, cfg, &profile), 1e-10);
  EXPECT_GE(profile.degradations, 1);
  EXPECT_TRUE(trail_contains(profile, "alloc:"));
}

TEST(FaultGemm, AllocTempFailureFallsBackToSerialLowMem) {
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Strassen;
  cfg.fault_spec = "alloc.temp:nth=1";
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(80, 80, 80, 1.0, 0.0, cfg, &profile), 1e-9);
  EXPECT_TRUE(trail_contains(profile, "alloc:fast->serial-lowmem"));
}

TEST(FaultGemm, PersistentAllocFailureWalksWholeLadder) {
  // p=1 keeps every tiled-piece attempt failing, so the driver must walk all
  // the way down to the canonical in-place path — and still be right.
  GemmConfig cfg;
  cfg.layout = Curve::Hilbert;
  cfg.algorithm = Algorithm::Strassen;
  cfg.fault_spec = "alloc.tiled:p=1";
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(64, 64, 64, 1.0, 1.0, cfg, &profile), 1e-10);
  EXPECT_EQ(profile.degradations, 3);
  EXPECT_TRUE(trail_contains(profile, "alloc:fast->serial-lowmem"));
  EXPECT_TRUE(trail_contains(profile, "alloc:standard-inplace"));
  EXPECT_TRUE(trail_contains(profile, "alloc:canonical-inplace"));
}

TEST(FaultGemm, ParallelAllocFailureCancelsSiblingsAndRetries) {
  // The bad_alloc fires inside a spawned task: the piece's cancellation flag
  // must prune the sibling subtrees, the groups drain, and the driver
  // retries the piece — result still exact.
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Strassen;
  cfg.threads = 4;
  cfg.fault_spec = "alloc.temp:nth=5";
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(128, 128, 128, 1.0, 0.0, cfg, &profile), 1e-9);
  EXPECT_GE(profile.degradations, 1);
}

TEST(FaultGemm, CanonicalFastPathFallsBackToStandard) {
  GemmConfig cfg;
  cfg.layout = Curve::ColMajor;
  cfg.algorithm = Algorithm::Winograd;
  cfg.fault_spec = "alloc.temp:nth=1";
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(72, 72, 72, 1.0, 2.0, cfg, &profile), 1e-10);
  EXPECT_TRUE(trail_contains(profile, "alloc:canonical-standard"));
}

// ---------------------------------------------------------------------------
// Worker-pool thread-creation failure.

TEST(FaultPool, ThreadCreateFailureDegradesPool) {
  fault::ScopedPlan guard("pool.thread_create:nth=3");
  WorkerPool pool(4);
  EXPECT_EQ(pool.requested_threads(), 4u);
  EXPECT_EQ(pool.thread_count(), 2u);  // threads 1-2 created, 3rd failed
  EXPECT_EQ(pool.thread_create_failures(), 2u);
  // The degraded pool still executes work.
  std::atomic<int> done{0};
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) group.spawn([&done] { ++done; });
  group.wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(FaultPool, TotalThreadCreateFailureMeansSerial) {
  fault::ScopedPlan guard("pool.thread_create:nth=1");
  WorkerPool pool(8);
  EXPECT_EQ(pool.thread_count(), 0u);
  EXPECT_TRUE(pool.serial());
  std::atomic<int> done{0};
  TaskGroup group(pool);
  group.spawn([&done] { ++done; });
  group.wait();
  EXPECT_EQ(done.load(), 1);
}

TEST(FaultPool, GemmRecordsPoolDegradation) {
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.threads = 4;
  cfg.fault_spec = "pool.thread_create:nth=2";
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(64, 64, 64, 1.0, 0.0, cfg, &profile), 1e-10);
  EXPECT_TRUE(trail_contains(profile, "pool:requested=4,got=1"));
}

// ---------------------------------------------------------------------------
// Task exceptions: propagation, determinism, cancellation, swallow stat.

TEST(FaultTask, InjectedTaskThrowPropagatesAsError) {
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.fault_spec = "task.throw:nth=1";
  Matrix a = random_matrix(64, 64, 1), b = random_matrix(64, 64, 2);
  Matrix c(64, 64);
  c.zero();
  try {
    gemm(64, 64, 64, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
         0.0, c.data(), c.ld(), cfg);
    FAIL() << "expected rla::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::TaskFailure);
    EXPECT_EQ(e.site(), "task.throw");
  }
}

TEST(FaultTask, SerialThrowUnwindsWithoutVisitingRestOfTree) {
  // Serial recursion: node entries are deterministic, so an injected throw
  // at the 3rd node must leave the hit counter at exactly 3 — the rest of
  // the tree was never entered.
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  Matrix a = random_matrix(64, 64, 1), b = random_matrix(64, 64, 2);
  Matrix c(64, 64);
  c.zero();
  std::uint64_t clean_nodes = 0;
  {
    // Count node entries of a clean run via a trigger that never fires.
    cfg.fault_spec = "task.throw:nth=1000000000";
    gemm(64, 64, 64, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
         0.0, c.data(), c.ld(), cfg);
    clean_nodes = fault::hits(fault::Site::TaskThrow);
    EXPECT_GT(clean_nodes, 3u);
  }
  cfg.fault_spec = "task.throw:nth=3";
  EXPECT_THROW(gemm(64, 64, 64, 1.0, a.data(), a.ld(), Op::None, b.data(),
                    b.ld(), Op::None, 0.0, c.data(), c.ld(), cfg),
               Error);
  EXPECT_EQ(fault::hits(fault::Site::TaskThrow), 3u);
}

TEST(FaultTask, FirstExceptionBySpawnOrderWinsDeterministically) {
  // Two tasks throw different types; wait() must always deliver the one
  // with the lower spawn index, whatever order the workers ran them in.
  WorkerPool pool(4);
  for (int round = 0; round < 20; ++round) {
    TaskGroup group(pool);
    for (int i = 0; i < 10; ++i) group.spawn([] {});
    group.spawn([] { throw std::runtime_error("first"); });  // seq 10
    for (int i = 0; i < 10; ++i) group.spawn([] {});
    group.spawn([] { throw std::logic_error("second"); });   // seq 21
    EXPECT_THROW(group.wait(), std::runtime_error);
  }
}

TEST(FaultTask, NestedGroupsPropagateInnerException) {
  WorkerPool pool(2);
  TaskGroup outer(pool);
  outer.spawn([&pool] {
    TaskGroup inner(pool);
    inner.spawn([] { throw Error(ErrorKind::TaskFailure, "inner", "deep"); });
    inner.wait();  // rethrows into the outer task, which records it
  });
  EXPECT_THROW(outer.wait(), Error);
}

TEST(FaultTask, CancellationFlagSetOnFirstFailure) {
  WorkerPool pool(2);
  std::atomic<bool> cancel{false};
  TaskGroup group(pool, &cancel);
  group.spawn([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_TRUE(cancel.load());
  // A second group wired to the same flag observes the cancellation.
  TaskGroup sibling(pool, &cancel);
  EXPECT_TRUE(sibling.cancelled());
}

TEST(FaultTask, SwallowedExceptionsAreCounted) {
  WorkerPool pool(2);
  EXPECT_EQ(pool.exceptions_swallowed(), 0u);
  {
    TaskGroup group(pool);
    group.spawn([] { throw std::runtime_error("dropped"); });
    // No wait(): the destructor must not throw, but must count the loss.
  }
  EXPECT_EQ(pool.exceptions_swallowed(), 1u);
  // Observed exceptions are not counted.
  {
    TaskGroup group(pool);
    group.spawn([] { throw std::runtime_error("seen"); });
    EXPECT_THROW(group.wait(), std::runtime_error);
  }
  EXPECT_EQ(pool.exceptions_swallowed(), 1u);
}

// ---------------------------------------------------------------------------
// Freivalds verification.

TEST(Verify, FreivaldsAcceptsCorrectProduct) {
  Matrix a = random_matrix(40, 30, 1), b = random_matrix(30, 20, 2);
  Matrix c(40, 20);
  c.zero();
  reference_gemm(40, 20, 30, 1.0, a.data(), a.ld(), false, b.data(), b.ld(),
                 false, 0.0, c.data(), c.ld());
  FreivaldsCheck check(40, 20, 4, 7);
  check.capture(c.data(), c.ld(), 0.0);
  const VerifyResult result = check.check(30, 1.0, a.data(), a.ld(), false,
                                          b.data(), b.ld(), false, c.data(),
                                          c.ld(), 1e-8);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.probes, 4);
  EXPECT_LT(result.max_scaled_residual, 1e-10);
}

TEST(Verify, FreivaldsRejectsCorruptedProduct) {
  Matrix a = random_matrix(32, 32, 3), b = random_matrix(32, 32, 4);
  Matrix c(32, 32);
  c.zero();
  reference_gemm(32, 32, 32, 1.0, a.data(), a.ld(), false, b.data(), b.ld(),
                 false, 0.0, c.data(), c.ld());
  c(17, 5) += 1.0;  // single-element corruption
  FreivaldsCheck check(32, 32, 4, 11);
  const VerifyResult result = check.check(32, 1.0, a.data(), a.ld(), false,
                                          b.data(), b.ld(), false, c.data(),
                                          c.ld(), 1e-8);
  EXPECT_FALSE(result.ok);
}

TEST(Verify, CleanFastRunPassesWithoutRerun) {
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Winograd;
  cfg.verify = true;
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(96, 96, 96, 1.0, 0.5, cfg, &profile), 1e-9);
  EXPECT_EQ(profile.verify_probes, 2);
  EXPECT_FALSE(profile.verify_failed);
  EXPECT_FALSE(profile.verify_rerun);
}

TEST(Verify, KernelCorruptionIsCaughtAndRerunFixesIt) {
  // The injected leaf-kernel corruption must be detected by the Freivalds
  // pass, and the automatic standard-algorithm rerun must restore C (beta
  // != 0 exercises the backup/restore path).
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Strassen;
  cfg.verify = true;
  cfg.fault_spec = "kernel.corrupt:nth=1";
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(64, 64, 64, 1.0, 0.5, cfg, &profile), 1e-10);
  EXPECT_TRUE(profile.verify_failed);
  EXPECT_TRUE(profile.verify_rerun);
  EXPECT_TRUE(trail_contains(profile, "verify:failed->standard"));
}

TEST(Verify, KernelCorruptionBetaZero) {
  GemmConfig cfg;
  cfg.layout = Curve::Hilbert;
  cfg.algorithm = Algorithm::Winograd;
  cfg.verify = true;
  cfg.verify_probes = 3;
  cfg.fault_spec = "kernel.corrupt:nth=2";
  GemmProfile profile;
  EXPECT_LT(run_vs_reference(80, 80, 80, 2.0, 0.0, cfg, &profile), 1e-9);
  EXPECT_TRUE(profile.verify_rerun);
}

TEST(Verify, StandardAlgorithmIgnoresVerifyFlag) {
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Standard;
  cfg.verify = true;
  cfg.fault_spec = "kernel.corrupt:nth=1";
  GemmProfile profile;
  // Standard runs unverified, so the corruption lands in C: the product must
  // differ from the reference (this documents that verify guards fast
  // algorithms only).
  EXPECT_GT(run_vs_reference(64, 64, 64, 1.0, 0.0, cfg, &profile), 1.0);
  EXPECT_EQ(profile.verify_probes, 0);
}

}  // namespace
}  // namespace rla
