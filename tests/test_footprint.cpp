// Tests of the Fig. 1 locality-footprint reproduction.

#include <gtest/gtest.h>

#include "trace/footprint.hpp"

namespace rla::trace {
namespace {

int popcount(std::uint64_t x) { return __builtin_popcountll(x); }

TEST(Footprint, StandardReadsExactlyRowAndColumn) {
  // Fig. 1(a): the standard algorithm computes C(i,j) from row i of A and
  // column j of B, nothing else.
  const std::uint32_t n = 8;
  const FootprintResult fp = footprint(Algorithm::Standard, n);
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t c = 0; c < n; ++c) {
      std::uint64_t row_mask = 0, col_mask = 0;
      for (std::uint32_t t = 0; t < n; ++t) {
        row_mask |= std::uint64_t{1} << (r * n + t);
        col_mask |= std::uint64_t{1} << (t * n + c);
      }
      ASSERT_EQ(fp.a_reads[r * n + c], row_mask) << r << "," << c;
      ASSERT_EQ(fp.b_reads[r * n + c], col_mask) << r << "," << c;
    }
  }
  EXPECT_EQ(fp.total_a_reads(), std::uint64_t{n} * n * n);
  EXPECT_EQ(fp.total_b_reads(), std::uint64_t{n} * n * n);
}

TEST(Footprint, FastAlgorithmsReadSupersets) {
  // The fast algorithms still depend on row i of A and column j of B (they
  // compute the same function) plus extra elements through the temporaries.
  const std::uint32_t n = 8;
  const FootprintResult std_fp = footprint(Algorithm::Standard, n);
  for (Algorithm alg : {Algorithm::Strassen, Algorithm::Winograd}) {
    const FootprintResult fp = footprint(alg, n);
    for (std::uint32_t e = 0; e < n * n; ++e) {
      ASSERT_EQ(fp.a_reads[e] & std_fp.a_reads[e], std_fp.a_reads[e]);
      ASSERT_EQ(fp.b_reads[e] & std_fp.b_reads[e], std_fp.b_reads[e]);
    }
    // "...increased number of memory accesses" (paper §2).
    EXPECT_GT(fp.total_a_reads(), std_fp.total_a_reads());
    EXPECT_GT(fp.total_b_reads(), std_fp.total_b_reads());
  }
}

TEST(Footprint, StrassenDiagonalIsWorst) {
  // Paper §2: the bad locality is "particularly evident along the main
  // diagonal for Strassen's algorithm".
  const std::uint32_t n = 8;
  const FootprintResult fp = footprint(Algorithm::Strassen, n);
  double diag_avg = 0.0, off_avg = 0.0;
  int diag_count = 0, off_count = 0;
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t c = 0; c < n; ++c) {
      const int reads = popcount(fp.a_reads[r * n + c]);
      if (r == c) {
        diag_avg += reads;
        ++diag_count;
      } else {
        off_avg += reads;
        ++off_count;
      }
    }
  }
  diag_avg /= diag_count;
  off_avg /= off_count;
  EXPECT_GT(diag_avg, off_avg);
}

TEST(Footprint, WinogradAntiDiagonalCornersAreWorst) {
  // Paper §2: "...and for elements (0,7) and (7,0) for Winograd's".
  const std::uint32_t n = 8;
  const FootprintResult fp = footprint(Algorithm::Winograd, n);
  const int corner_07 = popcount(fp.a_reads[0 * n + 7]) + popcount(fp.b_reads[0 * n + 7]);
  const int corner_70 = popcount(fp.a_reads[7 * n + 0]) + popcount(fp.b_reads[7 * n + 0]);
  int max_other = 0;
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t c = 0; c < n; ++c) {
      if ((r == 0 && c == 7) || (r == 7 && c == 0)) continue;
      max_other = std::max(
          max_other, popcount(fp.a_reads[r * n + c]) + popcount(fp.b_reads[r * n + c]));
    }
  }
  EXPECT_GE(corner_07, max_other);
  EXPECT_GE(corner_70, max_other);
}

TEST(Footprint, SmallSizesDegenerate) {
  const FootprintResult fp1 = footprint(Algorithm::Strassen, 1);
  EXPECT_EQ(fp1.a_reads[0], 1u);
  EXPECT_EQ(fp1.b_reads[0], 1u);
  const FootprintResult fp2 = footprint(Algorithm::Winograd, 2);
  EXPECT_EQ(fp2.n, 2u);
  // Every C element depends on at least its row/column (2 elements each).
  for (std::uint32_t e = 0; e < 4; ++e) {
    EXPECT_GE(popcount(fp2.a_reads[e]), 2);
    EXPECT_GE(popcount(fp2.b_reads[e]), 2);
  }
}

TEST(Footprint, RejectsInvalidSizes) {
  EXPECT_THROW(footprint(Algorithm::Standard, 0), std::invalid_argument);
  EXPECT_THROW(footprint(Algorithm::Standard, 3), std::invalid_argument);
  EXPECT_THROW(footprint(Algorithm::Standard, 16), std::invalid_argument);
}

TEST(Footprint, RenderShapeAndContent) {
  const FootprintResult fp = footprint(Algorithm::Standard, 4);
  const std::string art = render_footprint(fp, true);
  // 4 box-rows of 4 lines each + 3 separators = 19 lines.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 19);
  EXPECT_NE(art.find('*'), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);
}

}  // namespace
}  // namespace rla::trace
