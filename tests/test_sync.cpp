// Runtime tests of the annotated sync primitives (src/support/sync.hpp).
// The Clang thread-safety analysis checks the *static* discipline; these
// tests pin the runtime semantics the wrappers must preserve on every
// compiler: mutual exclusion, RAII release, manual unlock/relock, and the
// predicate-wait contract of CondVar.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "support/sync.hpp"

namespace rla {
namespace {

TEST(Sync, MutexProvidesMutualExclusion) {
  Mutex m;  // lock-level: registry
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        MutexLock lock(m);
        ++counter;  // unprotected, this would race and drop increments
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 4 * 20000);
}

TEST(Sync, TryLockReflectsOwnership) {
  Mutex m;  // lock-level: registry
  ASSERT_TRUE(m.try_lock());
  // Owned: a contender must fail. (try_lock on the owning thread is UB for
  // std::mutex, so probe from another thread.)
  bool contender_got_it = true;
  std::thread probe([&] { contender_got_it = m.try_lock(); });
  probe.join();
  EXPECT_FALSE(contender_got_it);
  m.unlock();
  std::thread probe2([&] {
    if (m.try_lock()) m.unlock();
    contender_got_it = true;
  });
  probe2.join();
  EXPECT_TRUE(contender_got_it);
}

TEST(Sync, MutexLockManualUnlockAndRelock) {
  Mutex m;  // lock-level: registry
  MutexLock lock(m);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  // While released, another thread can take the mutex.
  bool other_got_it = false;
  std::thread probe([&] {
    MutexLock inner(m);
    other_got_it = true;
  });
  probe.join();
  EXPECT_TRUE(other_got_it);
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(Sync, MutexLockReleasesOnScopeExit) {
  Mutex m;  // lock-level: registry
  { MutexLock lock(m); }
  // If the destructor leaked the lock this would deadlock (tier-1 runs
  // under a ctest timeout, so a hang is a failure, not a stall).
  MutexLock again(m);
  EXPECT_TRUE(again.owns_lock());
}

TEST(Sync, CondVarPredicateWaitSeesPublishedState) {
  Mutex m;  // lock-level: registry
  CondVar ready_cv;
  bool ready = false;
  int observed = 0;

  std::thread waiter([&] {
    MutexLock lock(m);
    ready_cv.wait(m, lock, [&] { return ready; });
    observed = 1;
  });
  // Unsynchronized sleep-then-notify would be a lost-wakeup test bug; the
  // predicate overload re-checks under the mutex, so this publish is safe
  // no matter when the waiter arrives.
  {
    MutexLock lock(m);
    ready = true;
  }
  ready_cv.notify_one();  // publishes: ready
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(Sync, CondVarPredicateWaitForTimesOutFalse) {
  Mutex m;  // lock-level: registry
  CondVar never_cv;
  MutexLock lock(m);
  const bool satisfied = never_cv.wait_for(
      m, lock, std::chrono::milliseconds(5), [] { return false; });
  EXPECT_FALSE(satisfied);
  EXPECT_TRUE(lock.owns_lock());  // relocked after the timed wait
}

TEST(Sync, CondVarPredicateWaitForReturnsTrueWhenSatisfied) {
  Mutex m;  // lock-level: registry
  CondVar ready_cv;
  bool ready = false;
  std::thread publisher([&] {
    {
      MutexLock lock(m);
      ready = true;
    }
    ready_cv.notify_all();  // publishes: ready
  });
  MutexLock lock(m);
  const bool satisfied = ready_cv.wait_for(
      m, lock, std::chrono::seconds(30), [&] { return ready; });
  EXPECT_TRUE(satisfied);
  publisher.join();
}

TEST(Sync, CondVarTimedPollWakesOnTimeout) {
  Mutex m;  // lock-level: registry
  CondVar idle_cv;
  MutexLock lock(m);
  // timed-wait: this is the primitive's own contract test — no guarded
  // predicate exists; the assertion is simply that the poll returns.
  idle_cv.wait_for(m, lock, std::chrono::milliseconds(1));
  EXPECT_TRUE(lock.owns_lock());
}

TEST(Sync, NotifyAllWakesEveryWaiter) {
  Mutex m;  // lock-level: registry
  CondVar go_cv;
  bool go = false;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < 4; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(m);
      go_cv.wait(m, lock, [&] { return go; });
      woke.fetch_add(1, std::memory_order_relaxed);
    });
  }
  {
    MutexLock lock(m);
    go = true;
  }
  go_cv.notify_all();  // publishes: go
  for (auto& th : waiters) th.join();
  EXPECT_EQ(woke.load(), 4);
}

}  // namespace
}  // namespace rla
