// Tests of the BLAS-compatible C entry point.

#include <gtest/gtest.h>

#include "core/blas.hpp"
#include "test_common.hpp"

namespace rla {
namespace {

TEST(Blas, BasicMultiply) {
  Matrix a = rla::testing::random_matrix(32, 24, 1);
  Matrix b = rla::testing::random_matrix(24, 40, 2);
  Matrix c = rla::testing::random_matrix(32, 40, 3);
  Matrix c_ref = c;
  const int rc = rla_dgemm('N', 'N', 32, 40, 24, 1.5, a.data(),
                           static_cast<int>(a.ld()), b.data(),
                           static_cast<int>(b.ld()), -1.0, c.data(),
                           static_cast<int>(c.ld()));
  EXPECT_EQ(rc, 0);
  reference_gemm(32, 40, 24, 1.5, a.data(), a.ld(), false, b.data(), b.ld(),
                 false, -1.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11);
}

TEST(Blas, TransposeFlags) {
  Matrix a = rla::testing::random_matrix(24, 32, 4);  // op(A)=A^T is 32x24
  Matrix b = rla::testing::random_matrix(40, 24, 5);  // op(B)=B^T is 24x40
  for (const char ta : {'T', 't', 'C', 'c'}) {
    Matrix c(32, 40);
    c.zero();
    const int rc = rla_dgemm(ta, 'T', 32, 40, 24, 1.0, a.data(),
                             static_cast<int>(a.ld()), b.data(),
                             static_cast<int>(b.ld()), 0.0, c.data(),
                             static_cast<int>(c.ld()));
    ASSERT_EQ(rc, 0);
    Matrix c_ref(32, 40);
    c_ref.zero();
    reference_gemm(32, 40, 24, 1.0, a.data(), a.ld(), true, b.data(), b.ld(),
                   true, 0.0, c_ref.data(), c_ref.ld());
    ASSERT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11);
  }
}

TEST(Blas, ErrorCodes) {
  Matrix a(4, 4), b(4, 4), c(4, 4);
  EXPECT_EQ(rla_dgemm('Q', 'N', 4, 4, 4, 1.0, a.data(), 4, b.data(), 4, 0.0,
                      c.data(), 4),
            1);
  EXPECT_EQ(rla_dgemm('N', 'N', -1, 4, 4, 1.0, a.data(), 4, b.data(), 4, 0.0,
                      c.data(), 4),
            2);
  EXPECT_EQ(rla_dgemm('N', 'N', 4, 4, 4, 1.0, a.data(), 2 /*lda<m*/, b.data(), 4,
                      0.0, c.data(), 4),
            3);
}

TEST(Blas, DefaultConfigIsConfigurable) {
  const GemmConfig original = default_gemm_config();
  GemmConfig cfg;
  cfg.layout = Curve::Hilbert;
  cfg.algorithm = Algorithm::Winograd;
  set_default_gemm_config(cfg);
  EXPECT_EQ(default_gemm_config().layout, Curve::Hilbert);
  EXPECT_EQ(default_gemm_config().algorithm, Algorithm::Winograd);

  Matrix a = rla::testing::random_matrix(48, 48, 6);
  Matrix b = rla::testing::random_matrix(48, 48, 7);
  Matrix c(48, 48);
  c.zero();
  EXPECT_EQ(rla_dgemm('N', 'N', 48, 48, 48, 1.0, a.data(), 48, b.data(), 48, 0.0,
                      c.data(), 48),
            0);
  Matrix c_ref(48, 48);
  c_ref.zero();
  reference_gemm(48, 48, 48, 1.0, a.data(), 48, false, b.data(), 48, false, 0.0,
                 c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-10);
  set_default_gemm_config(original);
}

TEST(Blas, DegenerateDimensionsSucceed) {
  Matrix c(4, 4);
  c.fill([](auto, auto) { return 2.0; });
  // m=0/n=0: nothing to do; k=0: pure beta scaling.
  EXPECT_EQ(rla_dgemm('N', 'N', 0, 4, 4, 1.0, nullptr, 1, nullptr, 1, 0.0,
                      c.data(), 4),
            0);
  EXPECT_EQ(rla_dgemm('N', 'N', 4, 4, 0, 1.0, nullptr, 1, nullptr, 1, 0.5,
                      c.data(), 4),
            0);
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
}

}  // namespace
}  // namespace rla
