// Layout explorer: prints the Fig. 2 curve diagrams — the tile numbering of
// each layout function on a 2^d × 2^d grid — plus per-curve structure facts
// (orientation count, quadrant order, neighbour dilation).
//
//   ./example_layout_explorer [--d=3] [--curve=hilbert]   (default: all)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/rla.hpp"
#include "util/cli.hpp"

namespace {

void print_grid(rla::Curve curve, int d) {
  const std::uint32_t n = 1u << d;
  std::printf("%s (%d orientation%s)\n",
              std::string(rla::curve_name(curve)).c_str(),
              rla::orientation_count(curve),
              rla::orientation_count(curve) == 1 ? "" : "s");
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      std::printf("%4llu",
                  static_cast<unsigned long long>(rla::s_index(curve, i, j, d)));
    }
    std::printf("\n");
  }

  // Mean curve jump: grid distance between consecutive curve positions
  // (1.0 = perfectly adjacent; the paper's "abrupt jumps get less
  // pronounced as the number of orientations increases").
  double jump = 0.0;
  rla::TileCoord prev = rla::s_inverse(curve, 0, d);
  for (std::uint64_t s = 1; s < std::uint64_t{n} * n; ++s) {
    const rla::TileCoord cur = rla::s_inverse(curve, s, d);
    jump += std::abs(static_cast<int>(cur.i) - static_cast<int>(prev.i)) +
            std::abs(static_cast<int>(cur.j) - static_cast<int>(prev.j));
    prev = cur;
  }
  std::printf("mean curve jump: %.3f\n", jump / (double(n) * n - 1));

  if (rla::is_recursive(curve)) {
    const rla::CurveOps& ops = rla::CurveOps::get(curve);
    std::printf("quadrant order (orientation 0): NW->%d NE->%d SW->%d SE->%d\n",
                ops.chunk(0, rla::kNW), ops.chunk(0, rla::kNE),
                ops.chunk(0, rla::kSW), ops.chunk(0, rla::kSE));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  rla::CliArgs args(argc, argv);
  const int d = static_cast<int>(args.get_int("d", 3));
  if (d < 1 || d > 5) {
    std::fprintf(stderr, "--d must be in [1, 5] for a readable grid\n");
    return 1;
  }
  if (args.has("curve")) {
    rla::Curve curve;
    if (!rla::parse_curve(args.get("curve"), curve)) {
      std::fprintf(stderr, "unknown curve '%s'\n", args.get("curve").c_str());
      return 1;
    }
    print_grid(curve, d);
    return 0;
  }
  for (const rla::Curve curve : rla::kAllCurves) print_grid(curve, d);
  return 0;
}
