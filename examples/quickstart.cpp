// Quickstart: multiply two matrices through the dgemm-compatible interface
// with a recursive layout and Strassen's algorithm, and verify the result.
//
//   ./example_quickstart [--n=512] [--layout=hilbert] [--algorithm=winograd]
//                        [--threads=4]

#include <cstdio>

#include "core/rla.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  rla::CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 512));

  rla::GemmConfig cfg;
  if (!rla::parse_curve(args.get("layout", "z-morton"), cfg.layout)) {
    std::fprintf(stderr, "unknown layout '%s'\n", args.get("layout").c_str());
    return 1;
  }
  if (!rla::parse_algorithm(args.get("algorithm", "strassen"), cfg.algorithm)) {
    std::fprintf(stderr, "unknown algorithm '%s'\n",
                 args.get("algorithm").c_str());
    return 1;
  }
  cfg.threads = static_cast<unsigned>(args.get_int("threads", 0));

  std::printf("C = A (%u x %u) * B, layout=%s, algorithm=%s, threads=%u\n", n, n,
              std::string(rla::curve_name(cfg.layout)).c_str(),
              std::string(rla::algorithm_name(cfg.algorithm)).c_str(),
              cfg.threads);

  rla::Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);

  rla::GemmProfile profile;
  rla::Timer timer;
  rla::multiply(c, a, b, cfg, &profile);
  const double seconds = timer.seconds();

  const double gflops = 2.0 * n * n * double(n) / seconds * 1e-9;
  std::printf("time           %8.3f ms  (%.2f GFLOP/s)\n", seconds * 1e3, gflops);
  std::printf("  convert in   %8.3f ms\n", profile.convert_in * 1e3);
  std::printf("  compute      %8.3f ms\n", profile.compute * 1e3);
  std::printf("  convert out  %8.3f ms\n", profile.convert_out * 1e3);
  std::printf("  depth d=%d, tiles %u x %u (A) / %u x %u (B)\n", profile.depth,
              profile.tile_m, profile.tile_k, profile.tile_k, profile.tile_n);

  // Verify a few entries against the naive oracle (full verification at
  // this size would dominate the runtime).
  rla::Matrix probe(8, 8);
  probe.zero();
  rla::reference_gemm(8, 8, n, 1.0, a.data(), a.ld(), false, b.data(), b.ld(),
                      false, 0.0, probe.data(), probe.ld());
  double worst = 0.0;
  for (std::uint32_t j = 0; j < 8; ++j) {
    for (std::uint32_t i = 0; i < 8; ++i) {
      worst = std::max(worst, std::abs(probe(i, j) - c(i, j)));
    }
  }
  std::printf("max |err| on 8x8 probe: %.3e  -> %s\n", worst,
              worst < 1e-9 * n ? "OK" : "MISMATCH");
  return worst < 1e-9 * n ? 0 : 1;
}
