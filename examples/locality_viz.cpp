// Locality visualizer: reproduces the paper's Figure 1 dot diagrams — for
// each element of C, which elements of A (or B) are read under the standard,
// Strassen, and Winograd recursions carried to the element level.
//
//   ./example_locality_viz [--n=8] [--operand=a|b]

#include <cstdio>
#include <string>

#include "core/config.hpp"
#include "trace/footprint.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  rla::CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 8));
  const bool operand_a = args.get("operand", "a") != "b";

  for (const rla::Algorithm alg :
       {rla::Algorithm::Standard, rla::Algorithm::Strassen,
        rla::Algorithm::Winograd}) {
    rla::trace::FootprintResult fp;
    try {
      fp = rla::trace::footprint(alg, n);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    std::printf("=== %s: elements of %s read to compute each element of C\n",
                std::string(rla::algorithm_name(alg)).c_str(),
                operand_a ? "A" : "B");
    std::printf("%s", rla::trace::render_footprint(fp, operand_a).c_str());
    std::printf("total reads: A=%llu B=%llu (standard reads exactly n per "
                "element: %llu)\n\n",
                static_cast<unsigned long long>(fp.total_a_reads()),
                static_cast<unsigned long long>(fp.total_b_reads()),
                static_cast<unsigned long long>(std::uint64_t{n} * n * n));
  }
  std::printf(
      "Note the dense diagonal boxes for Strassen and the heavy (0,%u) and\n"
      "(%u,0) corners for Winograd - the paper's \"worse algorithmic\n"
      "locality\" of the fast algorithms (SPAA'99 Fig. 1).\n",
      n - 1, n - 1);
  return 0;
}
