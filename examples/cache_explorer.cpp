// Cache explorer: replays the standard algorithm's memory trace under a
// canonical vs a recursive layout through the simulated memory hierarchy and
// the 4-core coherence model, printing the paper's §3 mechanisms (conflict
// misses, TLB dilation, false sharing) side by side.
//
//   ./example_cache_explorer [--n=128] [--tile=8] [--curve=z-morton]

#include <cstdio>
#include <iostream>

#include "cachesim/coherence.hpp"
#include "cachesim/hierarchy.hpp"
#include "core/rla.hpp"
#include "trace/access_logger.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

struct Result {
  double l1_miss_pct;
  double conflict_pct;
  double tlb_miss_pct;
  double cpa;
};

Result replay(std::uint32_t n, std::uint32_t tile, bool recursive,
              rla::Curve curve) {
  rla::sim::HierarchyConfig cfg;
  cfg.l1 = {1024, 32, 1, true};
  cfg.l2 = {64 * 1024, 32, 8, false};
  cfg.tlb = {16, 4096};
  rla::sim::MemoryHierarchy mem(cfg);
  auto sink = [&](std::uint64_t addr, bool write) { mem.access(addr, write); };
  if (recursive) {
    rla::trace::walk_standard_tiled(n, tile, curve, {}, sink);
  } else {
    rla::trace::walk_standard_canonical(n, tile, {}, sink);
  }
  Result r;
  r.l1_miss_pct = 100.0 * mem.l1().stats().miss_rate();
  r.conflict_pct = 100.0 * double(mem.l1().stats().conflict_misses) /
                   double(mem.l1().stats().accesses());
  r.tlb_miss_pct = 100.0 * mem.tlb().stats().miss_rate();
  r.cpa = mem.cpa();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  rla::CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 128));
  const auto tile = static_cast<std::uint32_t>(args.get_int("tile", 8));
  rla::Curve curve = rla::Curve::ZMorton;
  if (args.has("curve") && !rla::parse_curve(args.get("curve"), curve)) {
    std::fprintf(stderr, "unknown curve '%s'\n", args.get("curve").c_str());
    return 1;
  }
  if (n % tile != 0 || !rla::bits::is_pow2(n / tile)) {
    std::fprintf(stderr, "need n = tile * 2^d (got n=%u tile=%u)\n", n, tile);
    return 1;
  }

  std::printf("standard algorithm trace, n=%u, tile=%u, simulated 1KB "
              "direct-mapped L1 / 64KB L2 / 16-entry TLB\n\n",
              n, tile);
  const Result lc = replay(n, tile, false, curve);
  const Result lz = replay(n, tile, true, curve);
  rla::TextTable table({"metric", "ColMajor (L_C)",
                        std::string(rla::curve_name(curve))});
  table.add_row({"L1 miss %", rla::TextTable::num(lc.l1_miss_pct, 2),
                 rla::TextTable::num(lz.l1_miss_pct, 2)});
  table.add_row({"L1 conflict %", rla::TextTable::num(lc.conflict_pct, 2),
                 rla::TextTable::num(lz.conflict_pct, 2)});
  table.add_row({"TLB miss %", rla::TextTable::num(lc.tlb_miss_pct, 3),
                 rla::TextTable::num(lz.tlb_miss_pct, 3)});
  table.add_row({"cycles/access", rla::TextTable::num(lc.cpa, 2),
                 rla::TextTable::num(lz.cpa, 2)});
  table.print(std::cout);

  // False sharing across the 4 cores computing the four C quadrants.
  std::printf("\n4-core quadrant-parallel run (paper section 3 false-sharing "
              "scenario), n=%u:\n\n",
              60u);
  rla::sim::SmpConfig smp_cfg;
  smp_cfg.cores = 4;
  smp_cfg.l1 = {16 * 1024, 64, 2, false};
  rla::TextTable smp_table(
      {"layout", "false-sharing invalidations", "coherence misses"});
  for (const bool recursive : {false, true}) {
    rla::sim::SmpCaches smp(smp_cfg);
    const auto refs = rla::trace::quadrant_parallel_trace(
        60, 15, recursive ? curve : rla::Curve::ColMajor, {});
    for (const auto& ref : refs) smp.access(ref);
    smp_table.add_row(
        {recursive ? std::string(rla::curve_name(curve)) : "ColMajor (L_C)",
         rla::TextTable::num(
             static_cast<long long>(smp.stats().false_sharing_invalidations)),
         rla::TextTable::num(
             static_cast<long long>(smp.stats().coherence_misses))});
  }
  smp_table.print(std::cout);
  return 0;
}
