// Strassen crossover demo: sweeps n and prints the time of the standard
// vs Strassen vs Winograd recursions (all on the Z-Morton layout) together
// with the flat register-blocked kernel — showing where the O(n^lg7)
// algorithms start to win, the "fast algorithms consistently outperform the
// standard algorithm" observation of §5.
//
//   ./example_strassen_crossover [--min=64] [--max=768] [--threads=0]

#include <cstdio>
#include <iostream>

#include "core/rla.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

double time_gemm(rla::Matrix& c, const rla::Matrix& a, const rla::Matrix& b,
                 const rla::GemmConfig& cfg) {
  rla::Timer timer;
  rla::multiply(c, a, b, cfg);
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  rla::CliArgs args(argc, argv);
  const auto n_min = static_cast<std::uint32_t>(args.get_int("min", 64));
  const auto n_max = static_cast<std::uint32_t>(args.get_int("max", 768));
  const auto threads = static_cast<unsigned>(args.get_int("threads", 0));

  rla::TextTable table({"n", "flat kernel (ms)", "standard (ms)", "strassen (ms)",
                        "winograd (ms)", "strassen speedup vs standard"});
  for (std::uint32_t n = n_min; n <= n_max; n *= 2) {
    rla::Matrix a(n, n), b(n, n), c(n, n);
    a.fill_random(10);
    b.fill_random(11);

    rla::Timer timer;
    c.zero();
    rla::leaf_mm(rla::KernelKind::Blocked4x4, n, n, n, 1.0, a.data(), a.ld(),
                 b.data(), b.ld(), c.data(), c.ld());
    const double flat = timer.seconds();

    rla::GemmConfig cfg;
    cfg.layout = rla::Curve::ZMorton;
    cfg.threads = threads;
    cfg.algorithm = rla::Algorithm::Standard;
    const double standard = time_gemm(c, a, b, cfg);
    cfg.algorithm = rla::Algorithm::Strassen;
    const double strassen = time_gemm(c, a, b, cfg);
    cfg.algorithm = rla::Algorithm::Winograd;
    const double winograd = time_gemm(c, a, b, cfg);

    table.add_row({rla::TextTable::num(static_cast<long long>(n)),
                   rla::TextTable::num(flat * 1e3),
                   rla::TextTable::num(standard * 1e3),
                   rla::TextTable::num(strassen * 1e3),
                   rla::TextTable::num(winograd * 1e3),
                   rla::TextTable::num(standard / strassen, 2)});
  }
  table.print(std::cout);
  std::printf("\nSpeedup > 1 marks the crossover where the 7-multiply\n"
              "recurrences beat the 8-multiply recursion.\n");
  return 0;
}
