// Solve a symmetric positive definite system A x = b through the recursive
// tiled Cholesky factorization: A = L·Lᵀ, then forward/backward triangular
// substitution. Demonstrates the library's linear-algebra extension
// (recursion as automatic variable blocking, paper ref. [16]).
//
//   ./example_cholesky_solve [--n=512] [--layout=hilbert] [--threads=0]

#include <cmath>
#include <cstdio>

#include "core/rla.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

/// x ← L⁻¹ x (forward substitution, lower-triangular column-major L).
void forward_solve(std::uint32_t n, const rla::Matrix& l, double* x) {
  for (std::uint32_t j = 0; j < n; ++j) {
    x[j] /= l(j, j);
    const double xj = x[j];
    for (std::uint32_t i = j + 1; i < n; ++i) x[i] -= l(i, j) * xj;
  }
}

/// x ← L⁻ᵀ x (backward substitution).
void backward_solve(std::uint32_t n, const rla::Matrix& l, double* x) {
  for (std::uint32_t jj = n; jj > 0; --jj) {
    const std::uint32_t j = jj - 1;
    double v = x[j];
    for (std::uint32_t i = j + 1; i < n; ++i) v -= l(i, j) * x[i];
    x[j] = v / l(j, j);
  }
}

}  // namespace

int main(int argc, char** argv) {
  rla::CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 512));
  rla::CholeskyConfig cfg;
  if (!rla::parse_curve(args.get("layout", "z-morton"), cfg.layout)) {
    std::fprintf(stderr, "unknown layout '%s'\n", args.get("layout").c_str());
    return 1;
  }
  cfg.threads = static_cast<unsigned>(args.get_int("threads", 0));

  // A = M·Mᵀ + n·I (SPD), b = A·ones so the exact solution is all-ones.
  rla::Matrix m(n, n);
  m.fill_random(42);
  rla::Matrix a(n, n);
  a.zero();
  rla::reference_gemm(n, n, n, 1.0, m.data(), m.ld(), false, m.data(), m.ld(),
                      true, 0.0, a.data(), a.ld());
  for (std::uint32_t i = 0; i < n; ++i) a(i, i) += n;
  std::vector<double> b(n, 0.0);
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = 0; i < n; ++i) b[i] += a(i, j);
  }

  rla::Matrix l = a;
  rla::CholeskyProfile profile;
  rla::Timer timer;
  rla::cholesky(n, l.data(), l.ld(), cfg, &profile);
  const double factor_s = timer.seconds();

  std::vector<double> x = b;
  timer.reset();
  forward_solve(n, l, x.data());
  backward_solve(n, l, x.data());
  const double solve_s = timer.seconds();

  double worst = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) worst = std::max(worst, std::abs(x[i] - 1.0));

  std::printf("A x = b, n=%u, layout=%s, threads=%u\n", n,
              std::string(rla::curve_name(cfg.layout)).c_str(), cfg.threads);
  std::printf("factor  %8.3f ms  (depth d=%d, tile %u; conversion %.1f%%)\n",
              factor_s * 1e3, profile.depth, profile.tile,
              100.0 * (profile.convert_in + profile.convert_out) /
                  (profile.total > 0 ? profile.total : 1));
  std::printf("solve   %8.3f ms\n", solve_s * 1e3);
  std::printf("max |x_i - 1| = %.3e  -> %s\n", worst,
              worst < 1e-8 ? "OK" : "MISMATCH");
  return worst < 1e-8 ? 0 : 1;
}
